// Package jobserver reimplements the job-server benchmark of the
// paper's Section 5: a server performing shortest-job-first
// scheduling, where shorter job classes get higher priorities. The
// four job classes, highest to lowest priority:
//
//	mm   (level 0) — blocked matrix multiplication
//	fib  (level 1) — naive Fibonacci spawn tree
//	sort (level 2) — parallel mergesort
//	sw   (level 3) — Smith-Waterman sequence alignment (wavefront)
//
// Unlike Memcached and the email server, every request is a genuinely
// parallel task-parallel job ("the job server contains more
// parallelism — each job instance created by the server is a
// traditional task-parallel job"), which exercises intra-job
// spawn/sync under priority scheduling.
package jobserver

import "icilk"

// Priority levels (SJF order).
const (
	LevelMM   = 0
	LevelFib  = 1
	LevelSort = 2
	LevelSW   = 3
	// Levels is the number of priority levels the server needs.
	Levels = 4
)

// OpNames lists the job classes in priority order (Figure 4 labels).
var OpNames = []string{"mm", "fib", "sort", "sw"}

// ---- mm: blocked matrix multiplication -----------------------------

// mmTile is the output-tile edge (and k-blocking factor), sized like
// the old recursion's base case so the microkernel's cache behavior is
// unchanged.
const mmTile = 16

// MM multiplies two n×n matrices with a data-parallel loop over the
// output tile grid: every mmTile×mmTile tile of C is independent, so
// one For covers the whole product with no cross-iteration syncs —
// where the old 2×2 recursion needed a sync barrier between its two
// accumulation rounds, halving the available parallelism near the
// root. Within a tile, k advances in ascending blocks, the same
// per-element accumulation order as the recursion, so results are
// bitwise identical.
func MM(t *icilk.Task, a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	nt := (n + mmTile - 1) / mmTile
	icilk.For(t, 0, nt*nt, 1, func(tile int) {
		mmTileCompute(a, b, c, n, tile/nt, tile%nt)
	})
	return c
}

// mmTileCompute accumulates output tile (ti, tj): the full dot product
// of A's block row ti with B's block column tj.
func mmTileCompute(a, b, c []float64, n, ti, tj int) {
	i0, i1 := ti*mmTile, (ti+1)*mmTile
	j0, j1 := tj*mmTile, (tj+1)*mmTile
	if i1 > n {
		i1 = n
	}
	if j1 > n {
		j1 = n
	}
	for k0 := 0; k0 < n; k0 += mmTile {
		k1 := k0 + mmTile
		if k1 > n {
			k1 = n
		}
		for i := i0; i < i1; i++ {
			row := i*n + j0
			for k := k0; k < k1; k++ {
				av := a[i*n+k]
				brow := k*n + j0
				for j := 0; j < j1-j0; j++ {
					c[row+j] += av * b[brow+j]
				}
			}
		}
	}
}

// ---- fib: spawn tree ------------------------------------------------

const fibBase = 12

// Fib computes Fibonacci numbers with a spawn tree, sequential below
// fibBase.
func Fib(t *icilk.Task, n int) int64 {
	if n < fibBase {
		return fibSeq(n)
	}
	var a int64
	t.Spawn(func(ct *icilk.Task) { a = Fib(ct, n-1) })
	b := Fib(t, n-2)
	t.Sync()
	return a + b
}

func fibSeq(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

// ---- sort: parallel mergesort ---------------------------------------

const sortBase = 512

// mergeBase is the sequential cutoff of the parallel merge: below it
// the binary-search splitting costs more than it recovers.
const mergeBase = 2048

// Sort sorts xs in place with parallel mergesort: the recursion is a
// ParDo pair (each half joins in its own frame, so one half's steal
// never serializes the other's sub-syncs) and the merge itself is
// parallel — the old sequential merge made the final combine a serial
// O(n) bottleneck on the critical path.
func Sort(t *icilk.Task, xs []int64) {
	tmp := make([]int64, len(xs))
	mergesort(t, xs, tmp)
}

func mergesort(t *icilk.Task, xs, tmp []int64) {
	if len(xs) <= sortBase {
		insertionSort(xs)
		return
	}
	mid := len(xs) / 2
	icilk.ParDo(t,
		func(lt *icilk.Task) { mergesort(lt, xs[:mid], tmp[:mid]) },
		func(rt *icilk.Task) { mergesort(rt, xs[mid:], tmp[mid:]) })
	copy(tmp, xs)
	parMerge(t, tmp[:mid], tmp[mid:], xs)
}

// parMerge merges sorted runs a and b into out (len(out) =
// len(a)+len(b)) by divide and conquer: split the larger run at its
// midpoint, binary-search the pivot's rank in the smaller run, and
// merge the two independent sub-pairs as a ParDo pair. Span drops from
// O(n) to O(log² n).
func parMerge(t *icilk.Task, a, b, out []int64) {
	if len(a) < len(b) {
		// Swapping is value-safe for int64 runs: ties between the runs
		// produce identical elements either way.
		a, b = b, a
	}
	if len(a)+len(b) <= mergeBase || len(b) == 0 {
		mergeRuns(a, b, out)
		return
	}
	ma := len(a) / 2
	// Lower bound of the pivot in b: everything left of it is < pivot,
	// everything right of it ≥ pivot, so the sub-merges partition the
	// value space and out is globally sorted.
	mb := lowerBound(b, a[ma])
	icilk.ParDo(t,
		func(lt *icilk.Task) { parMerge(lt, a[:ma], b[:mb], out[:ma+mb]) },
		func(rt *icilk.Task) { parMerge(rt, a[ma:], b[mb:], out[ma+mb:]) })
}

// lowerBound returns the first index i with xs[i] >= v (len(xs) if
// none).
func lowerBound(xs []int64, v int64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// mergeRuns is the sequential base merge of two sorted runs into out.
func mergeRuns(a, b, out []int64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

func insertionSort(xs []int64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// ---- sw: Smith-Waterman wavefront -----------------------------------

// swTile is the blocking factor of the DP matrix.
const swTile = 32

// SW computes the Smith-Waterman local-alignment score of byte
// sequences p and q with unit match/mismatch/gap scores, using
// anti-diagonal wavefront parallelism over tiles: all tiles on an
// anti-diagonal are independent and spawned together; diagonals are
// separated by syncs.
func SW(t *icilk.Task, p, q []byte) int {
	m, n := len(p), len(q)
	// DP matrix with an extra zero row/column.
	h := make([]int32, (m+1)*(n+1))
	stride := n + 1

	tilesI := (m + swTile - 1) / swTile
	tilesJ := (n + swTile - 1) / swTile
	var best int32

	for diag := 0; diag < tilesI+tilesJ-1; diag++ {
		lo := diag - tilesJ + 1
		if lo < 0 {
			lo = 0
		}
		hi := diag
		if hi > tilesI-1 {
			hi = tilesI - 1
		}
		results := make([]int32, hi-lo+1)
		for ti := lo; ti < hi; ti++ {
			ti := ti
			idx := ti - lo
			t.Spawn(func(ct *icilk.Task) {
				results[idx] = swTileCompute(p, q, h, stride, ti, diag-ti)
			})
		}
		results[hi-lo] = swTileCompute(p, q, h, stride, hi, diag-hi)
		t.Sync()
		for _, r := range results {
			if r > best {
				best = r
			}
		}
	}
	return int(best)
}

// swTileCompute fills one tile of the DP matrix and returns its max.
func swTileCompute(p, q []byte, h []int32, stride, ti, tj int) int32 {
	iStart, jStart := ti*swTile+1, tj*swTile+1
	iEnd, jEnd := iStart+swTile, jStart+swTile
	if iEnd > len(p)+1 {
		iEnd = len(p) + 1
	}
	if jEnd > len(q)+1 {
		jEnd = len(q) + 1
	}
	var best int32
	for i := iStart; i < iEnd; i++ {
		pi := p[i-1]
		row := i * stride
		prow := (i - 1) * stride
		for j := jStart; j < jEnd; j++ {
			var match int32 = -1
			if pi == q[j-1] {
				match = 1
			}
			v := h[prow+j-1] + match
			if up := h[prow+j] - 1; up > v {
				v = up
			}
			if left := h[row+j-1] - 1; left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			h[row+j] = v
			if v > best {
				best = v
			}
		}
	}
	return best
}

// SWSeq is the sequential reference implementation (tests).
func SWSeq(p, q []byte) int {
	m, n := len(p), len(q)
	h := make([]int32, (m+1)*(n+1))
	stride := n + 1
	var best int32
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			var match int32 = -1
			if p[i-1] == q[j-1] {
				match = 1
			}
			v := h[(i-1)*stride+j-1] + match
			if up := h[(i-1)*stride+j] - 1; up > v {
				v = up
			}
			if left := h[i*stride+j-1] - 1; left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			h[i*stride+j] = v
			if v > best {
				best = v
			}
		}
	}
	return int(best)
}
