// Package jobserver reimplements the job-server benchmark of the
// paper's Section 5: a server performing shortest-job-first
// scheduling, where shorter job classes get higher priorities. The
// four job classes, highest to lowest priority:
//
//	mm   (level 0) — blocked matrix multiplication
//	fib  (level 1) — naive Fibonacci spawn tree
//	sort (level 2) — parallel mergesort
//	sw   (level 3) — Smith-Waterman sequence alignment (wavefront)
//
// Unlike Memcached and the email server, every request is a genuinely
// parallel task-parallel job ("the job server contains more
// parallelism — each job instance created by the server is a
// traditional task-parallel job"), which exercises intra-job
// spawn/sync under priority scheduling.
package jobserver

import "icilk"

// Priority levels (SJF order).
const (
	LevelMM   = 0
	LevelFib  = 1
	LevelSort = 2
	LevelSW   = 3
	// Levels is the number of priority levels the server needs.
	Levels = 4
)

// OpNames lists the job classes in priority order (Figure 4 labels).
var OpNames = []string{"mm", "fib", "sort", "sw"}

// ---- mm: blocked matrix multiplication -----------------------------

// MM multiplies two n×n matrices with 2×2 recursive decomposition,
// spawning quadrant subproblems above the base-case threshold.
func MM(t *icilk.Task, a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	mmRec(t, a, b, c, n, 0, 0, 0, 0, 0, 0, n)
	return c
}

const mmBase = 16

// mmRec computes C[ci..ci+m, cj..cj+m] += A[ai.., aj..] * B[bi.., bj..]
// over m×m blocks of row-major n×n matrices.
func mmRec(t *icilk.Task, a, b, c []float64, n, ai, aj, bi, bj, ci, cj, m int) {
	if m <= mmBase {
		for i := 0; i < m; i++ {
			for k := 0; k < m; k++ {
				av := a[(ai+i)*n+aj+k]
				row := (ci+i)*n + cj
				brow := (bi+k)*n + bj
				for j := 0; j < m; j++ {
					c[row+j] += av * b[brow+j]
				}
			}
		}
		return
	}
	h := m / 2
	// First half-products of the four quadrants in parallel…
	t.Spawn(func(ct *icilk.Task) { mmRec(ct, a, b, c, n, ai, aj, bi, bj, ci, cj, h) })
	t.Spawn(func(ct *icilk.Task) { mmRec(ct, a, b, c, n, ai, aj, bi, bj+h, ci, cj+h, h) })
	t.Spawn(func(ct *icilk.Task) { mmRec(ct, a, b, c, n, ai+h, aj, bi, bj, ci+h, cj, h) })
	mmRec(t, a, b, c, n, ai+h, aj, bi, bj+h, ci+h, cj+h, h)
	t.Sync()
	// …then the second half-products (they accumulate into the same
	// quadrants, so the two rounds are separated by the sync).
	t.Spawn(func(ct *icilk.Task) { mmRec(ct, a, b, c, n, ai, aj+h, bi+h, bj, ci, cj, h) })
	t.Spawn(func(ct *icilk.Task) { mmRec(ct, a, b, c, n, ai, aj+h, bi+h, bj+h, ci, cj+h, h) })
	t.Spawn(func(ct *icilk.Task) { mmRec(ct, a, b, c, n, ai+h, aj+h, bi+h, bj, ci+h, cj, h) })
	mmRec(t, a, b, c, n, ai+h, aj+h, bi+h, bj+h, ci+h, cj+h, h)
	t.Sync()
}

// ---- fib: spawn tree ------------------------------------------------

const fibBase = 12

// Fib computes Fibonacci numbers with a spawn tree, sequential below
// fibBase.
func Fib(t *icilk.Task, n int) int64 {
	if n < fibBase {
		return fibSeq(n)
	}
	var a int64
	t.Spawn(func(ct *icilk.Task) { a = Fib(ct, n-1) })
	b := Fib(t, n-2)
	t.Sync()
	return a + b
}

func fibSeq(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

// ---- sort: parallel mergesort ---------------------------------------

const sortBase = 512

// Sort sorts xs in place with parallel mergesort (parallel recursion,
// sequential merge).
func Sort(t *icilk.Task, xs []int64) {
	tmp := make([]int64, len(xs))
	mergesort(t, xs, tmp)
}

func mergesort(t *icilk.Task, xs, tmp []int64) {
	if len(xs) <= sortBase {
		insertionSort(xs)
		return
	}
	mid := len(xs) / 2
	t.Spawn(func(ct *icilk.Task) { mergesort(ct, xs[:mid], tmp[:mid]) })
	mergesort(t, xs[mid:], tmp[mid:])
	t.Sync()
	merge(xs, mid, tmp)
}

func insertionSort(xs []int64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

func merge(xs []int64, mid int, tmp []int64) {
	copy(tmp, xs)
	i, j, k := 0, mid, 0
	for i < mid && j < len(xs) {
		if tmp[i] <= tmp[j] {
			xs[k] = tmp[i]
			i++
		} else {
			xs[k] = tmp[j]
			j++
		}
		k++
	}
	for i < mid {
		xs[k] = tmp[i]
		i++
		k++
	}
	for j < len(xs) {
		xs[k] = tmp[j]
		j++
		k++
	}
}

// ---- sw: Smith-Waterman wavefront -----------------------------------

// swTile is the blocking factor of the DP matrix.
const swTile = 32

// SW computes the Smith-Waterman local-alignment score of byte
// sequences p and q with unit match/mismatch/gap scores, using
// anti-diagonal wavefront parallelism over tiles: all tiles on an
// anti-diagonal are independent and spawned together; diagonals are
// separated by syncs.
func SW(t *icilk.Task, p, q []byte) int {
	m, n := len(p), len(q)
	// DP matrix with an extra zero row/column.
	h := make([]int32, (m+1)*(n+1))
	stride := n + 1

	tilesI := (m + swTile - 1) / swTile
	tilesJ := (n + swTile - 1) / swTile
	var best int32

	for diag := 0; diag < tilesI+tilesJ-1; diag++ {
		lo := diag - tilesJ + 1
		if lo < 0 {
			lo = 0
		}
		hi := diag
		if hi > tilesI-1 {
			hi = tilesI - 1
		}
		results := make([]int32, hi-lo+1)
		for ti := lo; ti < hi; ti++ {
			ti := ti
			idx := ti - lo
			t.Spawn(func(ct *icilk.Task) {
				results[idx] = swTileCompute(p, q, h, stride, ti, diag-ti)
			})
		}
		results[hi-lo] = swTileCompute(p, q, h, stride, hi, diag-hi)
		t.Sync()
		for _, r := range results {
			if r > best {
				best = r
			}
		}
	}
	return int(best)
}

// swTileCompute fills one tile of the DP matrix and returns its max.
func swTileCompute(p, q []byte, h []int32, stride, ti, tj int) int32 {
	iStart, jStart := ti*swTile+1, tj*swTile+1
	iEnd, jEnd := iStart+swTile, jStart+swTile
	if iEnd > len(p)+1 {
		iEnd = len(p) + 1
	}
	if jEnd > len(q)+1 {
		jEnd = len(q) + 1
	}
	var best int32
	for i := iStart; i < iEnd; i++ {
		pi := p[i-1]
		row := i * stride
		prow := (i - 1) * stride
		for j := jStart; j < jEnd; j++ {
			var match int32 = -1
			if pi == q[j-1] {
				match = 1
			}
			v := h[prow+j-1] + match
			if up := h[prow+j] - 1; up > v {
				v = up
			}
			if left := h[row+j-1] - 1; left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			h[row+j] = v
			if v > best {
				best = v
			}
		}
	}
	return best
}

// SWSeq is the sequential reference implementation (tests).
func SWSeq(p, q []byte) int {
	m, n := len(p), len(q)
	h := make([]int32, (m+1)*(n+1))
	stride := n + 1
	var best int32
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			var match int32 = -1
			if p[i-1] == q[j-1] {
				match = 1
			}
			v := h[(i-1)*stride+j-1] + match
			if up := h[(i-1)*stride+j] - 1; up > v {
				v = up
			}
			if left := h[i*stride+j-1] - 1; left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			h[i*stride+j] = v
			if v > best {
				best = v
			}
		}
	}
	return int(best)
}
