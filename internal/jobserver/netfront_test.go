package jobserver

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"icilk"
	"icilk/internal/netsim"
)

func startJobFrontend(t *testing.T) (*netsim.Listener, func()) {
	t.Helper()
	rt, err := icilk.New(icilk.Config{Workers: 4, Levels: Levels})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(rt, Config{MMSize: 16, FibN: 14, SortSize: 1024, SWSize: 48})
	if err != nil {
		t.Fatal(err)
	}
	nf := NewNetFrontend(srv, rt)
	ln := netsim.NewListener()
	go nf.Serve(ln)
	return ln, func() { ln.Close(); rt.Close() }
}

// readLines collects n lines from ep with a deadline.
func readLines(t *testing.T, ep *netsim.Endpoint, n int) []string {
	t.Helper()
	var buf []byte
	var lines []string
	deadline := time.Now().Add(5 * time.Second)
	for len(lines) < n {
		for {
			i := strings.IndexByte(string(buf), '\n')
			if i < 0 {
				break
			}
			lines = append(lines, strings.TrimRight(string(buf[:i]), "\r"))
			buf = buf[i+1:]
		}
		if len(lines) >= n {
			break
		}
		var chunk [512]byte
		cn, err := ep.Read(chunk[:])
		if err != nil {
			t.Fatalf("read: %v (have %v)", err, lines)
		}
		buf = append(buf, chunk[:cn]...)
		if time.Now().After(deadline) {
			t.Fatalf("timeout: have %v", lines)
		}
	}
	return lines
}

func TestJobFrontendRunsAllClasses(t *testing.T) {
	ln, stop := startJobFrontend(t)
	defer stop()
	ep, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	// Pipeline one job of each class; responses arrive in completion
	// order, matched by the echoed class name.
	for _, class := range OpNames {
		fmt.Fprintf(ep, "RUN %s 42\r\n", class)
	}
	lines := readLines(t, ep, 4)
	seen := map[string]bool{}
	for _, l := range lines {
		fields := strings.Fields(l)
		if len(fields) < 4 || fields[0] != "DONE" || fields[2] != "42" {
			t.Fatalf("bad response %q", l)
		}
		seen[fields[1]] = true
	}
	for _, class := range OpNames {
		if !seen[class] {
			t.Fatalf("no response for %s (got %v)", class, lines)
		}
	}
}

func TestJobFrontendDeterministicResults(t *testing.T) {
	ln, stop := startJobFrontend(t)
	defer stop()
	ep, _ := ln.Dial()
	defer ep.Close()

	ep.WriteString("RUN sort 7\r\nRUN sort 7\r\n")
	lines := readLines(t, ep, 2)
	if lines[0] != lines[1] {
		t.Fatalf("same-seed jobs differ: %q vs %q", lines[0], lines[1])
	}
}

func TestJobFrontendErrors(t *testing.T) {
	ln, stop := startJobFrontend(t)
	defer stop()
	ep, _ := ln.Dial()
	defer ep.Close()

	cases := []string{"RUN\r\n", "RUN bogus 1\r\n", "RUN mm xyz\r\n", "NOPE\r\n"}
	for _, c := range cases {
		ep.WriteString(c)
	}
	for _, l := range readLines(t, ep, len(cases)) {
		if !strings.HasPrefix(l, "ERR") {
			t.Fatalf("expected error line, got %q", l)
		}
	}
	ep.WriteString("QUIT\r\n")
	if got := readLines(t, ep, 1); got[0] != "OK" {
		t.Fatalf("QUIT -> %q", got[0])
	}
}
