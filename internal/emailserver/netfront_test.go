package emailserver

import (
	"fmt"
	"strings"
	"testing"

	"icilk"
	"icilk/internal/netsim"
)

// netClient is a minimal blocking client for the frontend protocol.
type netClient struct {
	ep  *netsim.Endpoint
	buf []byte
	pos int
}

func (c *netClient) readLine(t *testing.T) string {
	t.Helper()
	for {
		for i := c.pos; i < len(c.buf); i++ {
			if c.buf[i] == '\n' {
				line := strings.TrimRight(string(c.buf[c.pos:i]), "\r")
				c.pos = i + 1
				return line
			}
		}
		var chunk [512]byte
		n, err := c.ep.Read(chunk[:])
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		c.buf = append(c.buf, chunk[:n]...)
	}
}

func (c *netClient) cmd(t *testing.T, req string) string {
	t.Helper()
	if _, err := c.ep.WriteString(req); err != nil {
		t.Fatalf("write: %v", err)
	}
	return c.readLine(t)
}

func startFrontend(t *testing.T) (*netsim.Listener, *Server, func()) {
	t.Helper()
	rt, err := icilk.New(icilk.Config{Workers: 2, Levels: Levels})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(rt, Config{Users: 4})
	if err != nil {
		t.Fatal(err)
	}
	nf := NewNetFrontend(srv, rt)
	ln := netsim.NewListener()
	go nf.Serve(ln)
	return ln, srv, func() { ln.Close(); rt.Close() }
}

func TestNetFrontendFullSession(t *testing.T) {
	ln, srv, stop := startFrontend(t)
	defer stop()
	ep, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := &netClient{ep: ep}

	body := "Hello there, this is a mail body."
	for i := 0; i < 3; i++ {
		got := c.cmd(t, fmt.Sprintf("SEND 1 alice@x sub%d %d\r\n%s\r\n", 2-i, len(body), body))
		if got != "OK" {
			t.Fatalf("SEND -> %q", got)
		}
	}
	if got := srv.MailboxLen(1); got != 3 {
		t.Fatalf("mailbox len = %d", got)
	}
	if got := c.cmd(t, "SORT 1\r\n"); got != "OK" {
		t.Fatalf("SORT -> %q", got)
	}
	got := c.cmd(t, "COMPRESS 1\r\n")
	if !strings.HasPrefix(got, "OK ") {
		t.Fatalf("COMPRESS -> %q", got)
	}
	got = c.cmd(t, "PRINT 1\r\n")
	if !strings.HasPrefix(got, "OK ") {
		t.Fatalf("PRINT -> %q", got)
	}
	var n int
	fmt.Sscanf(got, "OK %d", &n)
	if n <= 0 {
		t.Fatalf("PRINT rendered %d bytes", n)
	}
	if got := c.cmd(t, "QUIT\r\n"); got != "OK" {
		t.Fatalf("QUIT -> %q", got)
	}
}

func TestNetFrontendErrors(t *testing.T) {
	ln, _, stop := startFrontend(t)
	defer stop()
	ep, _ := ln.Dial()
	c := &netClient{ep: ep}

	if got := c.cmd(t, "BOGUS\r\n"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("unknown -> %q", got)
	}
	if got := c.cmd(t, "SEND 1 a b\r\n"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("short send -> %q", got)
	}
	if got := c.cmd(t, "SORT abc\r\n"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("bad user -> %q", got)
	}
	if got := c.cmd(t, "SORT 1 2\r\n"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("extra args -> %q", got)
	}
}

func TestNetFrontendConcurrentClients(t *testing.T) {
	ln, _, stop := startFrontend(t)
	defer stop()
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		i := i
		go func() {
			ep, err := ln.Dial()
			if err != nil {
				done <- err
				return
			}
			defer ep.Close()
			c := &netClient{ep: ep}
			body := fmt.Sprintf("body-from-client-%d", i)
			for j := 0; j < 10; j++ {
				ep.WriteString(fmt.Sprintf("SEND %d c%d@x s %d\r\n%s\r\n", i, i, len(body), body))
				if line := c.readLineNoFatal(); line != "OK" {
					done <- fmt.Errorf("client %d: SEND -> %q", i, line)
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// readLineNoFatal is the goroutine-safe variant (no *testing.T).
func (c *netClient) readLineNoFatal() string {
	for {
		for i := c.pos; i < len(c.buf); i++ {
			if c.buf[i] == '\n' {
				line := strings.TrimRight(string(c.buf[c.pos:i]), "\r")
				c.pos = i + 1
				return line
			}
		}
		var chunk [512]byte
		n, err := c.ep.Read(chunk[:])
		if err != nil {
			return "<read error>"
		}
		c.buf = append(c.buf, chunk[:n]...)
	}
}
