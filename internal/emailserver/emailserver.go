// Package emailserver reimplements the multi-user email server
// benchmark used to evaluate Adaptive I-Cilk and Prompt I-Cilk
// (Section 5 of the paper). The server supports four operations at
// three priority levels, highest to lowest:
//
//	send     (level 0) — deliver a message to a user's mailbox
//	sort     (level 1) — sort a user's mailbox
//	compress (level 2) — DEFLATE-compress a mailbox snapshot
//	print    (level 2) — decompress a snapshot and render it
//
// The workload is bursty and mostly sequential ("the email server
// benchmark ... creates sequential tasks and tasks with low
// parallelism in bursts"), which makes it the stress case for Prompt
// I-Cilk's waste accounting. Requests are injected through the
// runtime's external submission interface — the paper's client
// machines simulated connections; the substitution preserves arrival
// timing and priority structure.
package emailserver

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"icilk"
	"icilk/internal/predict"
)

// Priority levels of the operations.
const (
	LevelSend     = 0
	LevelSort     = 1
	LevelCompress = 2
	LevelPrint    = 2
	LevelSearch   = 2
	// Levels is the number of priority levels the server needs.
	Levels = 3
)

// Predictor request classes, one opcode per operation. The size
// bucket carries the cost-relevant input: the message body length for
// send, the mailbox population for the three whole-mailbox
// operations.
const (
	classSend uint8 = 1 + iota
	classSort
	classCompress
	classPrint
	classSearch
)

// Message is one email.
type Message struct {
	From    string
	Subject string
	Body    []byte
	Seq     int64
}

// Mailbox is one user's message store plus its latest compressed
// snapshot.
type Mailbox struct {
	mu       sync.Mutex
	messages []Message
	snapshot []byte // DEFLATE-compressed rendering, nil until compressed
	seq      int64
	// MaxMessages caps mailbox growth so long benchmark runs have
	// stationary operation costs; oldest messages fall off.
	maxMessages int
}

// Server is the email server: a set of mailboxes plus the runtime the
// operations execute on.
type Server struct {
	rt    *icilk.Runtime
	adm   *icilk.AdmissionController // nil = no admission control
	boxes []*Mailbox
}

// Config sizes the server.
type Config struct {
	// Users is the number of mailboxes. Default 64.
	Users int
	// MaxMessagesPerBox bounds each mailbox. Default 128.
	MaxMessagesPerBox int
}

// New creates a server over rt, which must be configured with at
// least Levels priority levels.
func New(rt *icilk.Runtime, cfg Config) (*Server, error) {
	if rt.Levels() < Levels {
		return nil, fmt.Errorf("emailserver: runtime has %d levels, need %d", rt.Levels(), Levels)
	}
	if cfg.Users <= 0 {
		cfg.Users = 64
	}
	if cfg.MaxMessagesPerBox <= 0 {
		cfg.MaxMessagesPerBox = 128
	}
	s := &Server{rt: rt, boxes: make([]*Mailbox, cfg.Users)}
	for i := range s.boxes {
		s.boxes[i] = &Mailbox{maxMessages: cfg.MaxMessagesPerBox}
	}
	return s, nil
}

// Users returns the mailbox count.
func (s *Server) Users() int { return len(s.boxes) }

// SetAdmission attaches an admission controller: the Try submission
// variants (TrySend/TrySort/TryCompress/TryPrint/TryDo) then gate
// every operation through it, inheriting its per-level queue bounds,
// shedding policy, and deadlines. The unconditional variants (Send,
// Do, ...) bypass it.
func (s *Server) SetAdmission(adm *icilk.AdmissionController) { s.adm = adm }

// submit routes one operation through the admission controller when
// one is attached, or straight to the runtime otherwise. cls is the
// operation's predictor class; arrival, when non-zero, is the
// caller-observed request arrival time (netfront timestamps it when
// the command line comes off the wire), so sojourn samples and the
// predictive policy's slack model see genuine queueing.
func (s *Server) submit(level int, cls predict.Class, arrival time.Time, fn func(*icilk.Task) any) (*icilk.Future, error) {
	if s.adm != nil {
		return s.adm.SubmitClassSince(level, cls, arrival, fn)
	}
	return s.rt.Submit(level, fn), nil
}

// boxSize returns user's current mailbox population (the size signal
// for the whole-mailbox operation classes).
func (s *Server) boxSize(user int) int {
	b := s.boxes[user%len(s.boxes)]
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.messages)
}

// MailboxLen returns user u's current message count (tests).
func (s *Server) MailboxLen(u int) int {
	b := s.boxes[u]
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.messages)
}

// Send submits a send operation and returns its future.
func (s *Server) Send(user int, from, subject string, body []byte) *icilk.Future {
	return s.rt.Submit(LevelSend, func(t *icilk.Task) any {
		s.doSend(user, from, subject, body)
		return nil
	})
}

// TrySend is Send gated by the attached admission controller: a shed
// request returns a nil future and an error wrapping icilk.ErrShed.
func (s *Server) TrySend(user int, from, subject string, body []byte) (*icilk.Future, error) {
	return s.TrySendSince(user, from, subject, body, time.Time{})
}

// TrySendSince is TrySend with the caller-observed arrival time
// (netfront timestamps the command line coming off the wire).
func (s *Server) TrySendSince(user int, from, subject string, body []byte, arrival time.Time) (*icilk.Future, error) {
	cls := predict.Class{Op: classSend, Size: predict.SizeBucket(len(body))}
	return s.submit(LevelSend, cls, arrival, func(t *icilk.Task) any {
		s.doSend(user, from, subject, body)
		return nil
	})
}

func (s *Server) doSend(user int, from, subject string, body []byte) {
	b := s.boxes[user%len(s.boxes)]
	// Render the stored form outside the lock (header formatting plus
	// a copy — the light, latency-critical work of the benchmark).
	stored := make([]byte, len(body))
	copy(stored, body)
	b.mu.Lock()
	b.seq++
	b.messages = append(b.messages, Message{From: from, Subject: subject, Body: stored, Seq: b.seq})
	if len(b.messages) > b.maxMessages {
		drop := len(b.messages) - b.maxMessages
		b.messages = append(b.messages[:0], b.messages[drop:]...)
	}
	b.mu.Unlock()
}

// Sort submits a sort operation (order mailbox by subject, then
// sender, then sequence) and returns its future.
func (s *Server) Sort(user int) *icilk.Future {
	return s.rt.Submit(LevelSort, func(t *icilk.Task) any {
		s.doSort(t, user)
		return nil
	})
}

// TrySort is Sort gated by the attached admission controller.
func (s *Server) TrySort(user int) (*icilk.Future, error) {
	return s.TrySortSince(user, time.Time{})
}

// TrySortSince is TrySort with the caller-observed arrival time.
func (s *Server) TrySortSince(user int, arrival time.Time) (*icilk.Future, error) {
	cls := predict.Class{Op: classSort, Size: predict.SizeBucket(s.boxSize(user))}
	return s.submit(LevelSort, cls, arrival, func(t *icilk.Task) any {
		s.doSort(t, user)
		return nil
	})
}

func (s *Server) doSort(t *icilk.Task, user int) {
	b := s.boxes[user%len(s.boxes)]
	b.mu.Lock()
	msgs := make([]Message, len(b.messages))
	copy(msgs, b.messages)
	b.mu.Unlock()
	var lastSeq int64
	if len(msgs) > 0 {
		lastSeq = msgs[len(msgs)-1].Seq
	}
	t.Yield() // scheduling point between snapshot and the sort burst
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].Subject != msgs[j].Subject {
			return msgs[i].Subject < msgs[j].Subject
		}
		if msgs[i].From != msgs[j].From {
			return msgs[i].From < msgs[j].From
		}
		return msgs[i].Seq < msgs[j].Seq
	})
	b.mu.Lock()
	// Install only if the mailbox didn't change meanwhile (cheap
	// check: same length and the newest message is still the one we
	// snapshotted).
	if len(b.messages) == len(msgs) && (len(msgs) == 0 || b.messages[len(msgs)-1].Seq == lastSeq) {
		copy(b.messages, msgs)
	}
	b.mu.Unlock()
}

// render flattens a message list to the wire form used by compress
// and print.
func render(msgs []Message) []byte {
	var buf bytes.Buffer
	for _, m := range msgs {
		fmt.Fprintf(&buf, "From: %s\r\nSubject: %s\r\nSeq: %d\r\n\r\n", m.From, m.Subject, m.Seq)
		buf.Write(m.Body)
		buf.WriteString("\r\n.\r\n")
	}
	return buf.Bytes()
}

// Compress submits a compress operation and returns its future.
func (s *Server) Compress(user int) *icilk.Future {
	return s.rt.Submit(LevelCompress, func(t *icilk.Task) any {
		return s.doCompress(t, user)
	})
}

// TryCompress is Compress gated by the attached admission controller.
func (s *Server) TryCompress(user int) (*icilk.Future, error) {
	return s.TryCompressSince(user, time.Time{})
}

// TryCompressSince is TryCompress with the caller-observed arrival
// time.
func (s *Server) TryCompressSince(user int, arrival time.Time) (*icilk.Future, error) {
	cls := predict.Class{Op: classCompress, Size: predict.SizeBucket(s.boxSize(user))}
	return s.submit(LevelCompress, cls, arrival, func(t *icilk.Task) any {
		return s.doCompress(t, user)
	})
}

func (s *Server) doCompress(t *icilk.Task, user int) int {
	b := s.boxes[user%len(s.boxes)]
	b.mu.Lock()
	msgs := make([]Message, len(b.messages))
	copy(msgs, b.messages)
	b.mu.Unlock()
	raw := render(msgs)

	// Chunked DEFLATE with a scheduling point between chunks, so the
	// long CPU burst remains promptly abandonable — the role compiled
	// Cilk spawn sites play in the original.
	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		panic(err)
	}
	const chunk = 4096
	for off := 0; off < len(raw); off += chunk {
		end := off + chunk
		if end > len(raw) {
			end = len(raw)
		}
		if _, err := fw.Write(raw[off:end]); err != nil {
			panic(err)
		}
		t.Yield()
	}
	if err := fw.Close(); err != nil {
		panic(err)
	}
	snap := out.Bytes()
	b.mu.Lock()
	b.snapshot = snap
	b.mu.Unlock()
	return len(snap)
}

// Print submits a print operation (decompress the latest snapshot and
// render it); the future resolves to the rendered length.
func (s *Server) Print(user int) *icilk.Future {
	return s.rt.Submit(LevelPrint, func(t *icilk.Task) any {
		return s.doPrint(t, user)
	})
}

// TryPrint is Print gated by the attached admission controller.
func (s *Server) TryPrint(user int) (*icilk.Future, error) {
	return s.TryPrintSince(user, time.Time{})
}

// TryPrintSince is TryPrint with the caller-observed arrival time.
func (s *Server) TryPrintSince(user int, arrival time.Time) (*icilk.Future, error) {
	cls := predict.Class{Op: classPrint, Size: predict.SizeBucket(s.boxSize(user))}
	return s.submit(LevelPrint, cls, arrival, func(t *icilk.Task) any {
		return s.doPrint(t, user)
	})
}

func (s *Server) doPrint(t *icilk.Task, user int) int {
	b := s.boxes[user%len(s.boxes)]
	b.mu.Lock()
	snap := b.snapshot
	b.mu.Unlock()
	if snap == nil {
		// Nothing compressed yet: compress first (keeps the op
		// meaningful early in a run).
		s.doCompress(t, user)
		b.mu.Lock()
		snap = b.snapshot
		b.mu.Unlock()
	}
	fr := flate.NewReader(bytes.NewReader(snap))
	defer fr.Close()
	total := 0
	var chunk [4096]byte
	for {
		n, err := fr.Read(chunk[:])
		total += n
		t.Yield()
		if err == io.EOF {
			break
		}
		if err != nil {
			panic(err)
		}
	}
	return total
}

// SearchResult is one full-text search hit.
type SearchResult struct {
	User    int
	Seq     int64
	From    string
	Subject string
}

// Search submits a full-text search over every mailbox — the one
// genuinely data-parallel operation in this otherwise
// sequential-burst workload. It runs at LevelSearch (batch priority,
// with compress/print) as a parallel tree reduction over the mailbox
// array: one leaf per mailbox, combines in user order, so the result
// list is deterministic — sorted by user, then by mailbox position.
// The future resolves to []SearchResult.
func (s *Server) Search(query string) *icilk.Future {
	return s.rt.Submit(LevelSearch, func(t *icilk.Task) any {
		return s.doSearch(t, query)
	})
}

// TrySearch is Search gated by the attached admission controller.
func (s *Server) TrySearch(query string) (*icilk.Future, error) {
	return s.TrySearchSince(query, time.Time{})
}

// TrySearchSince is TrySearch with the caller-observed arrival time.
// The predictor class's size signal is the mailbox count: search cost
// scales with the whole corpus, not one user's box.
func (s *Server) TrySearchSince(query string, arrival time.Time) (*icilk.Future, error) {
	cls := predict.Class{Op: classSearch, Size: predict.SizeBucket(len(s.boxes))}
	return s.submit(LevelSearch, cls, arrival, func(t *icilk.Task) any {
		return s.doSearch(t, query)
	})
}

func (s *Server) doSearch(t *icilk.Task, query string) []SearchResult {
	q := []byte(query)
	return icilk.Reduce(t, 0, len(s.boxes), 1, nil,
		func(user int) []SearchResult {
			return s.searchBox(user, query, q)
		},
		func(a, b []SearchResult) []SearchResult {
			if len(a) == 0 {
				return b
			}
			if len(b) == 0 {
				return a
			}
			// Full-slice expression: a leaf's slice may be shared with an
			// already-published combine result, so never append in place.
			return append(a[:len(a):len(a)], b...)
		})
}

// searchBox scans one mailbox for query hits: snapshot under the
// lock, match outside it (subject, sender, body).
func (s *Server) searchBox(user int, query string, q []byte) []SearchResult {
	b := s.boxes[user]
	b.mu.Lock()
	msgs := make([]Message, len(b.messages))
	copy(msgs, b.messages)
	b.mu.Unlock()
	var hits []SearchResult
	for i := range msgs {
		m := &msgs[i]
		if strings.Contains(m.Subject, query) || strings.Contains(m.From, query) || bytes.Contains(m.Body, q) {
			hits = append(hits, SearchResult{User: user, Seq: m.Seq, From: m.From, Subject: m.Subject})
		}
	}
	return hits
}

// OpNames lists the operation classes in priority order, as the
// paper's Figure 5 labels them.
var OpNames = []string{"send", "sort", "print", "comp"}

// Do dispatches an operation by class index (0=send, 1=sort, 2=print,
// 3=comp), used by the workload driver.
func (s *Server) Do(op int, user int, seq int64) *icilk.Future {
	switch op {
	case 0:
		subject := fmt.Sprintf("msg-%d", seq%97)
		body := makeBody(int(seq))
		return s.Send(user, fmt.Sprintf("user%d@example.com", seq%31), subject, body)
	case 1:
		return s.Sort(user)
	case 2:
		return s.Print(user)
	default:
		return s.Compress(user)
	}
}

// TryDo is Do gated by the attached admission controller: a shed
// operation returns a nil future and an error wrapping icilk.ErrShed.
func (s *Server) TryDo(op int, user int, seq int64) (*icilk.Future, error) {
	switch op {
	case 0:
		subject := fmt.Sprintf("msg-%d", seq%97)
		body := makeBody(int(seq))
		return s.TrySend(user, fmt.Sprintf("user%d@example.com", seq%31), subject, body)
	case 1:
		return s.TrySort(user)
	case 2:
		return s.TryPrint(user)
	default:
		return s.TryCompress(user)
	}
}

// makeBody builds a deterministic, mildly compressible body.
func makeBody(seed int) []byte {
	b := make([]byte, 1024)
	for i := range b {
		b[i] = byte('a' + (seed+i/7)%26)
	}
	return b
}
