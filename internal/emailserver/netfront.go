package emailserver

import (
	"strconv"
	"time"

	"icilk"
	"icilk/internal/metrics"
	"icilk/internal/netsim"
	"icilk/internal/wire"
)

// Network frontend: the paper's email server receives its operations
// from client machines over connections ("used 20 cores to simulate
// client connections"). This frontend exposes the four operations over
// a line protocol; each connection is a future routine at the lowest
// priority level, and every request is dispatched as a future at its
// operation's own priority level (handler waits never point at
// lower-priority work, so the dispatch is inversion-free):
//
//	SEND <user> <from> <subject> <bodylen>\r\n<body>\r\n -> OK\r\n
//	SORT <user>\r\n                                      -> OK\r\n
//	COMPRESS <user>\r\n                                  -> OK <bytes>\r\n
//	PRINT <user>\r\n                                     -> OK <bytes>\r\n
//	QUIT\r\n                                             -> closes
type NetFrontend struct {
	srv *Server
	rt  *icilk.Runtime
	ops map[string]*opMetrics // nil unless RegisterMetrics was called
}

// Conn is the connection surface the frontend serves: the in-memory
// netsim.Endpoint and the real-socket netreal.Conn both satisfy it.
type Conn interface {
	icilk.Conn
	WriteString(s string) (int, error)
	Close() error
}

// bufferedWriter is the optional write-coalescing switch some
// transports expose (netsim.Endpoint; netreal.Conn coalesces
// always).
type bufferedWriter interface{ BufferWrites() }

// NewNetFrontend wraps a server.
func NewNetFrontend(srv *Server, rt *icilk.Runtime) *NetFrontend {
	return &NetFrontend{srv: srv, rt: rt}
}

// opMetrics is one operation's request counter and latency histogram.
type opMetrics struct {
	reqs *metrics.Counter
	lat  *metrics.Histogram
}

// RegisterMetrics exports per-operation request counters and latency
// histograms (dispatch to completion, as observed by the connection
// handler) into reg, labeled with each operation's priority level.
// Call before Serve.
func (nf *NetFrontend) RegisterMetrics(reg *metrics.Registry) {
	nf.ops = make(map[string]*opMetrics)
	app := metrics.L("app", "email")
	for _, o := range []struct {
		name  string
		level int
	}{
		{"send", LevelSend}, {"sort", LevelSort},
		{"comp", LevelCompress}, {"print", LevelPrint},
	} {
		op := metrics.L("op", o.name)
		nf.ops[o.name] = &opMetrics{
			reqs: reg.Counter("icilk_app_requests_total",
				"Application requests served.", app, op, metrics.LevelLabel(o.level)),
			lat: reg.Histogram("icilk_app_request_latency_seconds",
				"Application request latency (dispatch to completion).",
				nil, app, op, metrics.LevelLabel(o.level)),
		}
	}
}

// record charges one completed operation (no-op when metrics are off).
func (nf *NetFrontend) record(op string, t0 time.Time) {
	if m := nf.ops[op]; m != nil {
		m.reqs.Inc()
		m.lat.Observe(time.Since(t0))
	}
}

// Overload replies: an admission rejection and a missed deadline are
// distinct protocol errors, so clients can tell "retry elsewhere"
// from "too slow".
const (
	replyShed     = "ERR out of capacity\r\n"
	replyDeadline = "ERR deadline exceeded\r\n"
)

// await gets f's result, distinguishing the timeout outcome. A shed
// submission (err != nil, f == nil) is reported immediately.
func (nf *NetFrontend) await(t *icilk.Task, ep Conn, f *icilk.Future, err error) (any, bool) {
	if err != nil {
		ep.WriteString(replyShed)
		return nil, false
	}
	v := f.Get(t)
	if f.Err() != nil {
		ep.WriteString(replyDeadline)
		return nil, false
	}
	return v, true
}

// Serve accepts connections until the listener closes. It blocks; run
// it on a goroutine.
func (nf *NetFrontend) Serve(ln *netsim.Listener) {
	for {
		ep, err := ln.Accept()
		if err != nil {
			return
		}
		nf.HandleConn(ep)
	}
}

// HandleConn serves one connection (any transport satisfying Conn)
// as a lowest-priority future routine; the returned future completes
// when the connection closes. Real-socket servers accept and wrap
// their net.Conns, then hand them here.
func (nf *NetFrontend) HandleConn(ep Conn) *icilk.Future {
	return nf.rt.Submit(LevelPrint, func(t *icilk.Task) any {
		nf.handleConn(t, ep)
		return nil
	})
}

func (nf *NetFrontend) handleConn(t *icilk.Task, ep Conn) {
	defer ep.Close()
	if bw, ok := ep.(bufferedWriter); ok {
		bw.BufferWrites()
	}
	lr := nf.rt.NewLineReader(ep)
	var (
		fields  [][]byte // reused split scratch
		numbuf  []byte   // reused "OK <n>" encoding scratch
		t0      time.Time
		f       *icilk.Future
		aerr    error
		recOp   string
		withVal bool
	)
	for {
		line, err := lr.ReadLineBytes(t)
		if err != nil {
			return
		}
		// The request's genuine arrival: its command line is off the
		// wire. Parsing, body reads, and admission queueing from here on
		// are real sojourn the admission estimators should see.
		arrival := time.Now()
		fields = wire.Fields(fields[:0], line)
		if len(fields) == 0 {
			continue
		}
		upperASCII(fields[0])
		switch string(fields[0]) {
		case "SEND":
			if len(fields) != 5 {
				ep.WriteString("ERR usage: SEND <user> <from> <subject> <bodylen>\r\n")
				continue
			}
			user, ok1 := wire.ParseInt(fields[1], 64)
			bodyLen, ok2 := wire.ParseInt(fields[4], 64)
			if !ok1 || !ok2 || bodyLen < 0 {
				ep.WriteString("ERR bad arguments\r\n")
				continue
			}
			// The message is retained by the mailbox: from/subject
			// become strings and the body is read as a fresh copy
			// (ReadBlock, not the view variant).
			from, subject := string(fields[2]), string(fields[3])
			body, err := lr.ReadBlock(t, int(bodyLen))
			if err != nil {
				return
			}
			t0 = time.Now()
			f, aerr = nf.srv.TrySendSince(int(user), from, subject, body, arrival)
			recOp, withVal = "send", false

		case "SORT":
			user, ok := parseUser(ep, fields)
			if !ok {
				continue
			}
			t0 = time.Now()
			f, aerr = nf.srv.TrySortSince(user, arrival)
			recOp, withVal = "sort", false

		case "COMPRESS":
			user, ok := parseUser(ep, fields)
			if !ok {
				continue
			}
			t0 = time.Now()
			f, aerr = nf.srv.TryCompressSince(user, arrival)
			recOp, withVal = "comp", true

		case "PRINT":
			user, ok := parseUser(ep, fields)
			if !ok {
				continue
			}
			t0 = time.Now()
			f, aerr = nf.srv.TryPrintSince(user, arrival)
			recOp, withVal = "print", true

		case "QUIT":
			ep.WriteString("OK\r\n")
			return

		default:
			ep.WriteString("ERR unknown command\r\n")
			continue
		}
		v, ok := nf.await(t, ep, f, aerr)
		if !ok {
			continue
		}
		nf.record(recOp, t0)
		if withVal {
			numbuf = append(numbuf[:0], "OK "...)
			numbuf = strconv.AppendInt(numbuf, int64(v.(int)), 10)
			numbuf = append(numbuf, '\r', '\n')
			ep.Write(numbuf)
		} else {
			ep.WriteString("OK\r\n")
		}
	}
}

// upperASCII uppercases b in place (command words are ASCII; b is a
// view into the connection's own read buffer, safe to mutate).
func upperASCII(b []byte) {
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
}

// parseUser extracts the single <user> argument, replying with an
// error line on failure.
func parseUser(ep Conn, fields [][]byte) (int, bool) {
	if len(fields) != 2 {
		ep.WriteString("ERR usage: ")
		ep.Write(fields[0]) // already uppercased
		ep.WriteString(" <user>\r\n")
		return 0, false
	}
	user, ok := wire.ParseInt(fields[1], 64)
	if !ok {
		ep.WriteString("ERR bad user\r\n")
		return 0, false
	}
	return int(user), true
}
