package emailserver

import (
	"testing"
	"time"

	"icilk"
)

func newRT(t *testing.T, pol icilk.Scheduler) *icilk.Runtime {
	t.Helper()
	rt, err := icilk.New(icilk.Config{Workers: 4, Levels: Levels, Scheduler: pol,
		Adaptive: icilk.AdaptiveParams{Quantum: time.Millisecond, Delta: 0.5, Rho: 2}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestSendAppendsToMailbox(t *testing.T) {
	rt := newRT(t, icilk.Prompt)
	s, err := New(rt, Config{Users: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Send(1, "a@x", "subj", []byte("body")).Wait()
	}
	if got := s.MailboxLen(1); got != 10 {
		t.Fatalf("mailbox len = %d, want 10", got)
	}
	if got := s.MailboxLen(0); got != 0 {
		t.Fatalf("wrong mailbox touched: %d", got)
	}
}

func TestMailboxCap(t *testing.T) {
	rt := newRT(t, icilk.Prompt)
	s, _ := New(rt, Config{Users: 2, MaxMessagesPerBox: 5})
	for i := 0; i < 12; i++ {
		s.Send(0, "a@x", "s", []byte("b")).Wait()
	}
	if got := s.MailboxLen(0); got != 5 {
		t.Fatalf("mailbox len = %d, want cap 5", got)
	}
}

func TestSortOrdersMailbox(t *testing.T) {
	rt := newRT(t, icilk.Prompt)
	s, _ := New(rt, Config{Users: 1})
	subjects := []string{"zebra", "apple", "mango", "kiwi"}
	for _, subj := range subjects {
		s.Send(0, "a@x", subj, []byte("b")).Wait()
	}
	s.Sort(0).Wait()
	b := s.boxes[0]
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := 1; i < len(b.messages); i++ {
		if b.messages[i-1].Subject > b.messages[i].Subject {
			t.Fatalf("mailbox not sorted at %d: %q > %q", i, b.messages[i-1].Subject, b.messages[i].Subject)
		}
	}
}

func TestCompressPrintRoundTrip(t *testing.T) {
	rt := newRT(t, icilk.Prompt)
	s, _ := New(rt, Config{Users: 1})
	for i := 0; i < 20; i++ {
		s.Send(0, "a@x", "subject", makeBody(i)).Wait()
	}
	compressed := s.Compress(0).Wait().(int)
	if compressed <= 0 {
		t.Fatalf("compressed size = %d", compressed)
	}
	rendered := s.Print(0).Wait().(int)
	// The rendered length must match the uncompressed rendering.
	b := s.boxes[0]
	b.mu.Lock()
	want := len(render(b.messages))
	b.mu.Unlock()
	if rendered != want {
		t.Fatalf("print rendered %d bytes, want %d", rendered, want)
	}
	if compressed >= want {
		t.Fatalf("DEFLATE did not compress: %d >= %d", compressed, want)
	}
}

func TestPrintWithoutPriorCompress(t *testing.T) {
	rt := newRT(t, icilk.Prompt)
	s, _ := New(rt, Config{Users: 1})
	s.Send(0, "a@x", "s", []byte("hello world")).Wait()
	if n := s.Print(0).Wait().(int); n <= 0 {
		t.Fatalf("print of uncompressed mailbox rendered %d bytes", n)
	}
}

func TestAllOpsAllPolicies(t *testing.T) {
	for _, pol := range []icilk.Scheduler{icilk.Prompt, icilk.Adaptive, icilk.AdaptiveAging, icilk.AdaptiveGreedy} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			rt := newRT(t, pol)
			s, _ := New(rt, Config{Users: 8})
			var futs []*icilk.Future
			for seq := int64(0); seq < 40; seq++ {
				futs = append(futs, s.Do(int(seq%4), int(seq%8), seq))
			}
			for _, f := range futs {
				f.Wait()
			}
			if rt.Inflight() != 0 {
				t.Fatalf("inflight = %d", rt.Inflight())
			}
		})
	}
}

func TestLevelsInsufficient(t *testing.T) {
	rt, err := icilk.New(icilk.Config{Workers: 1, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := New(rt, Config{}); err == nil {
		t.Fatal("New accepted a runtime with too few levels")
	}
}

// TestSearchFindsAcrossMailboxes: the parallel reduction must return
// every hit, in user order then mailbox order, matching subject,
// sender, and body, with no hits for absent terms.
func TestSearchFindsAcrossMailboxes(t *testing.T) {
	rt := newRT(t, icilk.Prompt)
	s, err := New(rt, Config{Users: 16})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 16; u++ {
		for m := 0; m < 8; m++ {
			subj, body := "routine", []byte("nothing here")
			if (u+m)%5 == 0 {
				subj = "quarterly-report"
			}
			if m == u%8 {
				body = []byte("the needle is hidden in this body")
			}
			s.Send(u, "sender@x", subj, body).Wait()
		}
	}

	hits := s.Search("needle").Wait().([]SearchResult)
	if len(hits) != 16 { // one planted body hit per user
		t.Fatalf("body search found %d hits, want 16", len(hits))
	}
	for i, h := range hits {
		if h.User != i {
			t.Fatalf("hit %d is user %d; results must be in user order", i, h.User)
		}
	}

	subjHits := s.Search("quarterly").Wait().([]SearchResult)
	want := 0
	for u := 0; u < 16; u++ {
		for m := 0; m < 8; m++ {
			if (u+m)%5 == 0 {
				want++
			}
		}
	}
	if len(subjHits) != want {
		t.Fatalf("subject search found %d hits, want %d", len(subjHits), want)
	}
	for i := 1; i < len(subjHits); i++ {
		if subjHits[i-1].User > subjHits[i].User ||
			(subjHits[i-1].User == subjHits[i].User && subjHits[i-1].Seq >= subjHits[i].Seq) {
			t.Fatalf("hits out of order at %d: %+v then %+v", i, subjHits[i-1], subjHits[i])
		}
	}

	if hits := s.Search("sender@x").Wait().([]SearchResult); len(hits) != 16*8 {
		t.Fatalf("sender search found %d hits, want %d", len(hits), 16*8)
	}
	if hits, ok := s.Search("absent-term").Wait().([]SearchResult); ok && len(hits) != 0 {
		t.Fatalf("absent term found %d hits", len(hits))
	}
}
