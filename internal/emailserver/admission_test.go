package emailserver

import (
	"testing"

	"icilk"
	"icilk/internal/netsim"
)

// TestNetFrontendAdmissionShed: with the controller at capacity the
// frontend answers "ERR out of capacity" and recovers once load
// drains.
func TestNetFrontendAdmissionShed(t *testing.T) {
	rt, err := icilk.New(icilk.Config{
		Workers: 2,
		Levels:  Levels,
		Admission: &icilk.AdmissionConfig{
			Policy:   icilk.ShedTailDrop,
			QueueCap: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv, err := New(rt, Config{Users: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetAdmission(rt.Admission())
	nf := NewNetFrontend(srv, rt)
	ln := netsim.NewListener()
	defer ln.Close()
	go nf.Serve(ln)

	ep, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := &netClient{ep: ep}

	body := "hello"
	tk, err := rt.Admission().Acquire(LevelSend)
	if err != nil {
		t.Fatal(err)
	}
	got := c.cmd(t, "SEND 1 a@x s 5\r\n"+body+"\r\n")
	if got != "ERR out of capacity" {
		t.Fatalf("overloaded SEND -> %q", got)
	}
	rt.Admission().Release(tk, false)

	if got := c.cmd(t, "SEND 1 a@x s 5\r\n"+body+"\r\n"); got != "OK" {
		t.Fatalf("SEND after release -> %q", got)
	}
	// Sheds are per level: a full sort level does not block sends.
	tk, err = rt.Admission().Acquire(LevelSort)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.cmd(t, "SORT 1\r\n"); got != "ERR out of capacity" {
		t.Fatalf("overloaded SORT -> %q", got)
	}
	if got := c.cmd(t, "SEND 1 a@x s 5\r\n"+body+"\r\n"); got != "OK" {
		t.Fatalf("SEND with sort level full -> %q", got)
	}
	rt.Admission().Release(tk, false)
}
