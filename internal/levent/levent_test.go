package levent

import (
	"sync"
	"testing"
	"time"

	"icilk/internal/netsim"
)

// startBase runs Dispatch on a goroutine and returns a stopper.
func startBase(b *Base) func() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.Dispatch()
	}()
	return func() {
		b.Stop()
		wg.Wait()
	}
}

func TestCallbackRunsOnWrite(t *testing.T) {
	base := NewBase()
	stop := startBase(base)
	defer stop()

	a, srv := netsim.Pipe()
	got := make(chan string, 1)
	ev := base.NewReadEvent(srv, func(e *Event) {
		var buf [16]byte
		n, _ := e.Endpoint().TryRead(buf[:])
		got <- string(buf[:n])
	})
	ev.Add()
	a.WriteString("event!")
	select {
	case s := <-got:
		if s != "event!" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(time.Second):
		t.Fatal("callback never ran")
	}
}

func TestFIFODispatchOrder(t *testing.T) {
	base := NewBase()
	// Don't start dispatch yet: queue several events, then check they
	// run in arrival order.
	const n = 8
	var mu sync.Mutex
	var order []int
	var clients []*netsim.Endpoint
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		i := i
		cli, srv := netsim.Pipe()
		clients = append(clients, cli)
		ev := base.NewReadEvent(srv, func(e *Event) {
			mu.Lock()
			order = append(order, i)
			full := len(order) == n
			mu.Unlock()
			if full {
				close(done)
			}
		})
		ev.Add()
	}
	// Fire in a known order.
	for i := 0; i < n; i++ {
		clients[i].WriteString("x")
	}
	stop := startBase(base)
	defer stop()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("not all callbacks ran")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range order {
		if v != i {
			t.Fatalf("dispatch order %v not FIFO", order)
		}
	}
}

func TestReAddKeepsListening(t *testing.T) {
	base := NewBase()
	stop := startBase(base)
	defer stop()

	a, srv := netsim.Pipe()
	hits := make(chan struct{}, 4)
	var ev *Event
	ev = base.NewReadEvent(srv, func(e *Event) {
		var buf [16]byte
		e.Endpoint().TryRead(buf[:])
		hits <- struct{}{}
		ev.Add() // persistent via re-add
	})
	ev.Add()
	for i := 0; i < 3; i++ {
		a.WriteString("x")
		select {
		case <-hits:
		case <-time.After(time.Second):
			t.Fatalf("callback %d never ran", i)
		}
	}
}

func TestReactivateRequeues(t *testing.T) {
	base := NewBase()
	a, srv := netsim.Pipe()
	runs := make(chan int, 4)
	count := 0
	ev := base.NewReadEvent(srv, func(e *Event) {
		count++
		runs <- count
		if count == 1 {
			e.Reactivate() // simulate a voluntary yield
		}
	})
	ev.SetUserData("state")
	if ev.UserData().(string) != "state" {
		t.Fatal("userdata lost")
	}
	ev.Add()
	a.WriteString("x")
	stop := startBase(base)
	defer stop()
	for i := 1; i <= 2; i++ {
		select {
		case got := <-runs:
			if got != i {
				t.Fatalf("run %d reported %d", i, got)
			}
		case <-time.After(time.Second):
			t.Fatalf("reactivated callback run %d missing", i)
		}
	}
}

func TestStopTerminatesDispatch(t *testing.T) {
	base := NewBase()
	done := make(chan struct{})
	go func() {
		base.Dispatch()
		close(done)
	}()
	time.Sleep(time.Millisecond)
	base.Stop()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Dispatch did not stop")
	}
}

func TestPending(t *testing.T) {
	base := NewBase()
	_, srv := netsim.Pipe()
	ev := base.NewReadEvent(srv, func(*Event) {})
	ev.Reactivate()
	ev.Reactivate()
	if base.Pending() != 2 {
		t.Fatalf("pending = %d", base.Pending())
	}
}
