// Package levent is a miniature libevent: per-thread event bases with
// one-shot read events and a FIFO dispatch loop. It is the substrate
// of the pthread-style Memcached baseline, reproducing the structure
// the paper describes in Section 3:
//
//	"A worker thread time-multiplexes among multiple client
//	 connections at any given time via an event loop ... a callback
//	 function is registered with the libevent library for events
//	 associated with that particular client connection."
//
// The dispatch loop consumes readiness events in arrival order, which
// is exactly how the pthreaded implementation gets its implicit aging
// heuristic: "As the I/O operations become ready, the OS detects the
// available I/O events and returns them to libevent in the same
// order."
package levent

import (
	"sync"

	"icilk/internal/netsim"
)

// Event is a registered one-shot read event. After it fires, the
// callback must call Add again to keep listening (libevent's
// non-persistent event semantics).
type Event struct {
	base *Base
	ep   *netsim.Endpoint
	cb   func(*Event)
	// userdata is free for the callback's own state machine.
	userdata any
}

// Endpoint returns the endpoint this event watches.
func (e *Event) Endpoint() *netsim.Endpoint { return e.ep }

// UserData returns the value attached with SetUserData.
func (e *Event) UserData() any { return e.userdata }

// SetUserData attaches caller state to the event.
func (e *Event) SetUserData(v any) { e.userdata = v }

// Add arms the event: when the endpoint becomes readable the event is
// queued on its base's ready list and the callback runs on the base's
// dispatch goroutine.
func (e *Event) Add() {
	e.ep.ArmRead(func() { e.base.push(e) })
}

// Reactivate re-queues the event at the tail of the ready list
// without re-arming the endpoint. Callbacks use it to yield after
// processing a batch of pipelined requests while input remains
// buffered — the voluntary yield the paper describes ("up to some
// threshold before the worker thread voluntarily 'yields' ... so as
// to not starve other connections").
func (e *Event) Reactivate() { e.base.push(e) }

// Base is one event loop (one per worker thread in the pthread
// model).
type Base struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ready   []*Event // FIFO of fired events — the aging order
	stopped bool
}

// NewBase returns an empty event base.
func NewBase() *Base {
	b := &Base{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// NewReadEvent creates (without arming) a read event for ep.
func (b *Base) NewReadEvent(ep *netsim.Endpoint, cb func(*Event)) *Event {
	return &Event{base: b, ep: ep, cb: cb}
}

// push queues a fired event; called from whatever goroutine performed
// the write (or closed the stream).
func (b *Base) push(e *Event) {
	b.mu.Lock()
	b.ready = append(b.ready, e)
	b.cond.Signal()
	b.mu.Unlock()
}

// Pending returns the number of fired-but-undispatched events.
func (b *Base) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.ready)
}

// Dispatch runs the event loop until Stop is called: it dequeues
// fired events in FIFO order and invokes their callbacks on the
// calling goroutine.
func (b *Base) Dispatch() {
	for {
		b.mu.Lock()
		for len(b.ready) == 0 && !b.stopped {
			b.cond.Wait()
		}
		if b.stopped {
			b.mu.Unlock()
			return
		}
		e := b.ready[0]
		b.ready[0] = nil
		b.ready = b.ready[1:]
		b.mu.Unlock()
		e.cb(e)
	}
}

// Stop terminates Dispatch after the current callback returns.
func (b *Base) Stop() {
	b.mu.Lock()
	b.stopped = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
