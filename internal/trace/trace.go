// Package trace is a low-overhead scheduler event log: a fixed-size
// lock-free ring of (timestamp, worker, level, kind) records that the
// runtime emits at its decision points (steals, muggings,
// abandonments, suspensions, resumptions, sleeps, wakes). It exists
// for debugging scheduler behaviour and for validating claims like
// "the worker abandoned within one scheduling point of the bit being
// set" without perturbing the measurements a profiler would.
package trace

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Kind labels a scheduler event.
type Kind uint8

// Scheduler event kinds.
const (
	// Steal: a thief took the top frame of a deque.
	Steal Kind = iota
	// Mug: a thief adopted a whole resumable deque.
	Mug
	// Abandon: a worker left its deque for a higher-priority level.
	Abandon
	// Suspend: a deque suspended at a failed get.
	Suspend
	// Resume: a deque became resumable (future completed).
	Resume
	// Sleep: a worker began waiting on the all-zero bitfield gate.
	Sleep
	// Wake: a worker returned from the gate.
	Wake
	// Enqueue: a deque entered a centralized pool queue.
	Enqueue
	// Drop: a pool pop discarded an empty/dead deque (lazy removal).
	Drop
	numKinds = iota
)

func (k Kind) String() string {
	switch k {
	case Steal:
		return "steal"
	case Mug:
		return "mug"
	case Abandon:
		return "abandon"
	case Suspend:
		return "suspend"
	case Resume:
		return "resume"
	case Sleep:
		return "sleep"
	case Wake:
		return "wake"
	case Enqueue:
		return "enqueue"
	case Drop:
		return "drop"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one record.
type Event struct {
	// TS is nanoseconds since the log was created.
	TS int64
	// Worker is the acting worker's id (-1 for non-worker goroutines,
	// e.g. I/O handler threads emitting Resume).
	Worker int32
	// Level is the priority level the event concerns.
	Level int32
	Kind  Kind
}

// Log is a fixed-capacity ring. A nil *Log is valid and drops all
// events, so call sites need no conditional.
type Log struct {
	start  time.Time
	ring   []Event
	pos    atomic.Uint64 // total events ever written
	counts [numKinds]atomic.Int64
}

// New creates a log holding the most recent capacity events.
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Log{start: time.Now(), ring: make([]Event, capacity)}
}

// Add records one event. Safe for concurrent use; nil-safe.
func (l *Log) Add(k Kind, worker, level int) {
	if l == nil {
		return
	}
	i := l.pos.Add(1) - 1
	l.ring[i%uint64(len(l.ring))] = Event{
		TS:     int64(time.Since(l.start)),
		Worker: int32(worker),
		Level:  int32(level),
		Kind:   k,
	}
	l.counts[k].Add(1)
}

// Count returns how many events of kind k were ever recorded.
func (l *Log) Count(k Kind) int64 {
	if l == nil {
		return 0
	}
	return l.counts[k].Load()
}

// Total returns the number of events ever recorded.
func (l *Log) Total() int64 {
	if l == nil {
		return 0
	}
	return int64(l.pos.Load())
}

// Snapshot returns the retained events, oldest first. Concurrent
// writers may tear the oldest entries; snapshots are for post-hoc
// inspection, not synchronization.
func (l *Log) Snapshot() []Event {
	if l == nil {
		return nil
	}
	total := l.pos.Load()
	n := uint64(len(l.ring))
	var out []Event
	lo := uint64(0)
	if total > n {
		lo = total - n
	}
	for i := lo; i < total; i++ {
		out = append(out, l.ring[i%n])
	}
	return out
}

// String summarizes event counts.
func (l *Log) String() string {
	if l == nil {
		return "trace(disabled)"
	}
	s := "trace{"
	for k := Kind(0); k < numKinds; k++ {
		if c := l.counts[k].Load(); c > 0 {
			s += fmt.Sprintf("%v:%d ", k, c)
		}
	}
	return s + fmt.Sprintf("total:%d}", l.Total())
}
