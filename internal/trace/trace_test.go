package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestAddAndCounts(t *testing.T) {
	l := New(8)
	l.Add(Steal, 1, 0)
	l.Add(Steal, 2, 1)
	l.Add(Mug, 0, 3)
	if l.Count(Steal) != 2 || l.Count(Mug) != 1 || l.Count(Abandon) != 0 {
		t.Fatalf("counts: steal=%d mug=%d", l.Count(Steal), l.Count(Mug))
	}
	if l.Total() != 3 {
		t.Fatalf("total = %d", l.Total())
	}
}

func TestSnapshotOrderAndWrap(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Add(Enqueue, i, i%3)
	}
	ev := l.Snapshot()
	if len(ev) != 4 {
		t.Fatalf("snapshot len = %d, want ring capacity 4", len(ev))
	}
	// Oldest retained is event #6 (workers 6..9).
	for i, e := range ev {
		if int(e.Worker) != 6+i {
			t.Fatalf("snapshot[%d].Worker = %d, want %d", i, e.Worker, 6+i)
		}
	}
	// Timestamps non-decreasing.
	for i := 1; i < len(ev); i++ {
		if ev[i].TS < ev[i-1].TS {
			t.Fatal("timestamps regress")
		}
	}
}

func TestNilLogIsNoop(t *testing.T) {
	var l *Log
	l.Add(Steal, 0, 0) // must not panic
	if l.Count(Steal) != 0 || l.Total() != 0 || l.Snapshot() != nil {
		t.Fatal("nil log not inert")
	}
	if l.String() != "trace(disabled)" {
		t.Fatalf("String = %q", l.String())
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestConcurrentAdd(t *testing.T) {
	l := New(1024)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				l.Add(Kind(i%int(numKinds)), g, 0)
			}
		}(g)
	}
	wg.Wait()
	if l.Total() != 20000 {
		t.Fatalf("total = %d", l.Total())
	}
	var sum int64
	for k := Kind(0); k < numKinds; k++ {
		sum += l.Count(k)
	}
	if sum != 20000 {
		t.Fatalf("count sum = %d", sum)
	}
	if !strings.Contains(l.String(), "total:20000") {
		t.Fatalf("String = %q", l.String())
	}
}
