// Package admin is the runtime's introspection HTTP server (stdlib
// net/http only): a small endpoint surface for watching a live
// scheduler instead of instrumenting a test harness around it.
//
//	GET /            endpoint index (text)
//	GET /healthz     liveness: 200 whenever the server can answer
//	GET /readyz      readiness: 200 while the attached runtime is open
//	                 and accepting work; 503 (with a JSON body) when no
//	                 runtime is attached, the runtime has closed, or
//	                 admission control reports sustained 100% shedding
//	GET /metrics     Prometheus text exposition of the metric registry
//	GET /debug/sched JSON scheduler snapshot (bitfield, per-level pool
//	                 depths, per-worker state and waste clocks)
//	GET /debug/trace JSON snapshot of the recent scheduler event ring
//	                 (?n=K limits to the most recent K events)
//	GET /debug/predict JSON snapshot of the service-time predictor
//	                 (per-table occupancy and hit/alias counts,
//	                 mispredict rate, absolute-error summary)
//	GET /debug/cluster JSON snapshot of the cluster topology (ring
//	                 epoch, live shards, per-shard item counts and
//	                 inflight work, promoted hot keys)
//	GET /debug/pprof/ Go runtime profiles (net/http/pprof): heap and
//	                 allocs for the hot-path allocation budget, profile
//	                 (CPU), goroutine, block, mutex, trace, …
//
// The server's data sources are swappable at runtime (SetSources), so
// one admin server can follow a sequence of short-lived runtimes — the
// benchmark binaries re-point it at each measurement's runtime.
//
// # Security
//
// Every endpoint is unauthenticated, and the pprof handlers include
// CPU profiling and execution tracing, which measurably degrade the
// scheduler they observe — anyone who can reach the port can trigger
// them. Bind the server to loopback (127.0.0.1:6060) or an internal
// interface only; to expose it beyond that, wrap Handler() in your
// own auth middleware instead of calling Start.
package admin

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"icilk/internal/metrics"
	"icilk/internal/trace"
)

// Health is the runtime view behind GET /readyz: Ready means the
// runtime is open and its workers are started; Degraded means
// admission control is currently rejecting every arrival (a load
// balancer should stop routing new traffic here until it clears).
type Health struct {
	Ready    bool   `json:"ready"`
	Degraded bool   `json:"degraded"`
	Detail   string `json:"detail,omitempty"`
}

// Sources are the data feeds behind the endpoints. Any field may be
// nil/zero; the corresponding endpoint then answers 503.
type Sources struct {
	// Metrics backs GET /metrics.
	Metrics *metrics.Registry
	// Sched returns the scheduler snapshot for GET /debug/sched; the
	// result is JSON-marshalled as-is.
	Sched func() any
	// TraceEvents returns the retained scheduler events, oldest
	// first, for GET /debug/trace; enabled is false when the runtime
	// was built without an event trace (TraceCapacity 0).
	TraceEvents func() (events []trace.Event, enabled bool)
	// Health backs GET /readyz (liveness /healthz never consults it).
	Health func() Health
	// Predict returns the service-time predictor snapshot for GET
	// /debug/predict; nil when the runtime carries no predictor.
	Predict func() any
	// Cluster returns the cluster topology snapshot for GET
	// /debug/cluster (ring epoch, live shards, per-shard occupancy,
	// promoted hot keys); nil for single-runtime deployments.
	Cluster func() any
}

// Server is the admin HTTP server. Create with New, point it at a
// runtime with SetSources, bind with Start.
type Server struct {
	mux *http.ServeMux
	src atomic.Pointer[Sources]

	mu   sync.Mutex
	ln   net.Listener
	http *http.Server
}

// New creates a server with no sources attached.
func New() *Server {
	s := &Server{mux: http.NewServeMux()}
	s.src.Store(&Sources{})
	s.mux.HandleFunc("GET /", s.handleIndex)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/sched", s.handleSched)
	s.mux.HandleFunc("GET /debug/trace", s.handleTrace)
	s.mux.HandleFunc("GET /debug/predict", s.handlePredict)
	s.mux.HandleFunc("GET /debug/cluster", s.handleCluster)
	// Go runtime profiling: /debug/pprof/ routes named profiles
	// (heap, allocs, goroutine, block, mutex, …) itself; the four
	// below are special-cased by net/http/pprof and need their own
	// routes. Explicit methods throughout — a method-less pattern
	// would conflict with "GET /" above; symbol also takes POST.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// SetSources re-points the endpoints (atomically; in-flight requests
// finish against the sources they started with).
func (s *Server) SetSources(src Sources) { s.src.Store(&src) }

// Handler returns the route handler (tests drive it via
// httptest without binding a socket).
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr and serves in a background goroutine. The
// endpoints are unauthenticated (see the package Security note): addr
// should be a loopback or internal-interface address.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("admin: already started on %s", s.ln.Addr())
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.mux}
	s.mu.Unlock()
	go s.http.Serve(ln)
	return nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and open connections immediately.
func (s *Server) Close() error {
	s.mu.Lock()
	h := s.http
	s.mu.Unlock()
	if h == nil {
		return nil
	}
	return h.Close()
}

// Shutdown stops the server gracefully via http.Server.Shutdown: the
// listener closes immediately (so /readyz probes start failing at the
// connection level), in-flight requests — including a slow /metrics
// scrape or a running CPU profile — drain until ctx expires, and only
// then are remaining connections cut.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	h := s.http
	s.mu.Unlock()
	if h == nil {
		return nil
	}
	return h.Shutdown(ctx)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "icilk admin endpoints:\n"+
		"  /healthz      liveness probe (always 200)\n"+
		"  /readyz       readiness probe (503 when closed or degraded)\n"+
		"  /metrics      Prometheus text exposition\n"+
		"  /debug/sched  scheduler snapshot (JSON)\n"+
		"  /debug/trace  recent scheduler events (JSON, ?n=K)\n"+
		"  /debug/predict service-time predictor snapshot (JSON)\n"+
		"  /debug/cluster cluster topology snapshot (JSON)\n"+
		"  /debug/pprof/ Go runtime profiles (heap, profile, goroutine, ...)\n")
}

// handleHealthz is the liveness probe: answering at all is the
// signal, so it is a plain 200 with no source consultation.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "ok\n")
}

// handleReadyz is the readiness probe: 200 only while an attached
// runtime is open and not shedding everything.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	src := s.src.Load()
	if src.Health == nil {
		http.Error(w, "no runtime attached", http.StatusServiceUnavailable)
		return
	}
	h := src.Health()
	if !h.Ready || h.Degraded {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(h)
		return
	}
	writeJSON(w, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	src := s.src.Load()
	if src.Metrics == nil {
		http.Error(w, "no metrics registry attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	src.Metrics.WriteTo(w)
}

func (s *Server) handleSched(w http.ResponseWriter, r *http.Request) {
	src := s.src.Load()
	if src.Sched == nil {
		http.Error(w, "no scheduler attached", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, src.Sched())
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	src := s.src.Load()
	if src.Predict == nil {
		http.Error(w, "no predictor attached", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, src.Predict())
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	src := s.src.Load()
	if src.Cluster == nil {
		http.Error(w, "no cluster attached", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, src.Cluster())
}

// traceEvent is the JSON rendering of one trace.Event (kind as its
// string name).
type traceEvent struct {
	TS     int64  `json:"ts"`
	Worker int32  `json:"worker"`
	Level  int32  `json:"level"`
	Kind   string `json:"kind"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	src := s.src.Load()
	if src.TraceEvents == nil {
		http.Error(w, "no trace source attached", http.StatusServiceUnavailable)
		return
	}
	evs, enabled := src.TraceEvents()
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		if n < len(evs) {
			evs = evs[len(evs)-n:]
		}
	}
	out := struct {
		Enabled bool         `json:"enabled"`
		Events  []traceEvent `json:"events"`
	}{Enabled: enabled, Events: make([]traceEvent, len(evs))}
	for i, e := range evs {
		out.Events[i] = traceEvent{TS: e.TS, Worker: e.Worker, Level: e.Level, Kind: e.Kind.String()}
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Header already sent; nothing more we can do.
		return
	}
}
