package admin

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"icilk/internal/metrics"
	"icilk/internal/trace"
)

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, _ := io.ReadAll(res.Body)
	return res, string(body)
}

func TestEndpointsUnavailableWithoutSources(t *testing.T) {
	s := New()
	for _, path := range []string{"/metrics", "/debug/sched", "/debug/trace"} {
		res, _ := get(t, s.Handler(), path)
		if res.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s = %d, want 503", path, res.StatusCode)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("icilk_test_total", "help").Add(3)
	s := New()
	s.SetSources(Sources{Metrics: reg})
	res, body := get(t, s.Handler(), "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(body, "icilk_test_total 3\n") {
		t.Errorf("body missing counter:\n%s", body)
	}
}

func TestSchedEndpoint(t *testing.T) {
	s := New()
	s.SetSources(Sources{Sched: func() any {
		return map[string]any{"policy": "prompt", "bitfield": 5}
	}})
	res, body := get(t, s.Handler(), "/debug/sched")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if got["policy"] != "prompt" || got["bitfield"] != float64(5) {
		t.Errorf("decoded %v", got)
	}
}

func TestTraceEndpoint(t *testing.T) {
	evs := []trace.Event{
		{TS: 1, Worker: 0, Level: 0, Kind: trace.Steal},
		{TS: 2, Worker: 1, Level: 1, Kind: trace.Mug},
		{TS: 3, Worker: 2, Level: 0, Kind: trace.Abandon},
	}
	s := New()
	s.SetSources(Sources{TraceEvents: func() ([]trace.Event, bool) { return evs, true }})

	decode := func(body string) (bool, []traceEvent) {
		var out struct {
			Enabled bool         `json:"enabled"`
			Events  []traceEvent `json:"events"`
		}
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, body)
		}
		return out.Enabled, out.Events
	}

	_, body := get(t, s.Handler(), "/debug/trace")
	enabled, all := decode(body)
	if !enabled || len(all) != 3 {
		t.Fatalf("enabled=%v events=%d, want true/3", enabled, len(all))
	}
	if all[0].Kind != "steal" || all[1].Kind != "mug" || all[2].Kind != "abandon" {
		t.Errorf("kinds = %v %v %v", all[0].Kind, all[1].Kind, all[2].Kind)
	}

	// ?n keeps the most recent events.
	_, body = get(t, s.Handler(), "/debug/trace?n=1")
	if _, last := decode(body); len(last) != 1 || last[0].TS != 3 {
		t.Errorf("?n=1 returned %v", last)
	}

	res, _ := get(t, s.Handler(), "/debug/trace?n=bogus")
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", res.StatusCode)
	}
}

func TestTraceDisabled(t *testing.T) {
	s := New()
	s.SetSources(Sources{TraceEvents: func() ([]trace.Event, bool) { return nil, false }})
	_, body := get(t, s.Handler(), "/debug/trace")
	var out struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Enabled {
		t.Error("enabled=true for a runtime without a trace")
	}
}

func TestPprofEndpoint(t *testing.T) {
	s := New()
	// pprof works with no sources attached — it reads the Go runtime.
	res, body := get(t, s.Handler(), "/debug/pprof/")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", res.StatusCode)
	}
	for _, profile := range []string{"heap", "allocs", "goroutine"} {
		if !strings.Contains(body, profile) {
			t.Errorf("pprof index missing %q profile:\n%s", profile, body)
		}
	}
	res, _ = get(t, s.Handler(), "/debug/pprof/goroutine?debug=1")
	if res.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/goroutine = %d, want 200", res.StatusCode)
	}
	res, _ = get(t, s.Handler(), "/debug/pprof/cmdline")
	if res.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/cmdline = %d, want 200", res.StatusCode)
	}
}

func TestSetSourcesSwaps(t *testing.T) {
	a := metrics.NewRegistry()
	a.Counter("icilk_run_a_total", "")
	b := metrics.NewRegistry()
	b.Counter("icilk_run_b_total", "")
	s := New()
	s.SetSources(Sources{Metrics: a})
	if _, body := get(t, s.Handler(), "/metrics"); !strings.Contains(body, "icilk_run_a_total") {
		t.Fatal("first registry not served")
	}
	s.SetSources(Sources{Metrics: b})
	_, body := get(t, s.Handler(), "/metrics")
	if !strings.Contains(body, "icilk_run_b_total") || strings.Contains(body, "icilk_run_a_total") {
		t.Errorf("swap not effective:\n%s", body)
	}
}

func TestStartAddrClose(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("icilk_live_total", "").Inc()
	s := New()
	s.SetSources(Sources{Metrics: reg})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Start("127.0.0.1:0"); err == nil {
		t.Error("second Start did not fail")
	}
	res, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(body), "icilk_live_total 1\n") {
		t.Errorf("live scrape missing counter:\n%s", body)
	}
}

func TestHealthzAlwaysOK(t *testing.T) {
	s := New()
	// Liveness never consults sources.
	res, body := get(t, s.Handler(), "/healthz")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("GET /healthz = %d %q, want 200 ok", res.StatusCode, body)
	}
}

func TestReadyzStates(t *testing.T) {
	s := New()

	// No runtime attached: not ready.
	res, _ := get(t, s.Handler(), "/readyz")
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unattached /readyz = %d, want 503", res.StatusCode)
	}

	var h Health
	s.SetSources(Sources{Health: func() Health { return h }})

	h = Health{Ready: true}
	res, body := get(t, s.Handler(), "/readyz")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("ready /readyz = %d, want 200 (%s)", res.StatusCode, body)
	}

	h = Health{Ready: true, Degraded: true, Detail: "shedding everything"}
	res, body = get(t, s.Handler(), "/readyz")
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded /readyz = %d, want 503", res.StatusCode)
	}
	var got Health
	if err := json.Unmarshal([]byte(body), &got); err != nil || !got.Degraded {
		t.Fatalf("degraded body %q (err %v)", body, err)
	}

	h = Health{Ready: false, Detail: "runtime closed"}
	res, _ = get(t, s.Handler(), "/readyz")
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed /readyz = %d, want 503", res.StatusCode)
	}
}

func TestShutdownGraceful(t *testing.T) {
	s := New()
	s.SetSources(Sources{Metrics: metrics.NewRegistry()})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if _, err := http.Get("http://" + addr + "/healthz"); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
	// Shutdown on an unstarted server is a no-op.
	if err := New().Shutdown(context.Background()); err != nil {
		t.Fatalf("unstarted Shutdown: %v", err)
	}
}
