//go:build icilk_debug

package predict

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icilk/internal/invariant/perturb"
)

// TestPerturbUpdatePredictOrdering re-runs the concurrent
// update/predict workload with seeded perturbation at the
// perturb.Predict points: Predict yields between entry and its table
// walk (so a racing Update can shift the history register and retrain
// or evict the entry it is about to read), and Update yields between
// choosing its provider from a history snapshot and CASing the entry
// (so a racing Update can advance the history underneath it). The
// packed-word protocol must keep every observable prediction
// internally consistent — estimate within field range, confidence
// within its counter range — and the counter identities exact, no
// matter where the schedule lands inside those windows.
func TestPerturbUpdatePredictOrdering(t *testing.T) {
	for _, seed := range perturb.Seeds([]uint64{0x1, 0xdecade, 0xfeedbeef}) {
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			perturb.Enable(seed)
			defer perturb.Disable()

			// Tiny tables so updaters constantly collide on slots and
			// the allocate/evict/retrain windows are hit for real.
			p, err := New(Config{BaseBits: 3, TableBits: 2, HistoryLengths: []int{1, 2}})
			if err != nil {
				t.Fatal(err)
			}
			const (
				updaters   = 3
				predictors = 2
				iters      = 800
			)
			var predictCalls atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < updaters; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						c := Class{Op: uint8((w + i) % 7), Size: uint8(i % 3)}
						p.Update(c, time.Duration(100+(w*131+i*17)%900)*time.Microsecond)
					}
				}(w)
			}
			for w := 0; w < predictors; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						est, conf, ok := p.Predict(Class{Op: uint8(i % 7), Size: uint8(i % 3)})
						predictCalls.Add(1)
						if ok {
							if est < 0 || est > time.Duration(valueMask) {
								t.Errorf("torn estimate %v", est)
								return
							}
							if conf > ConfMax {
								t.Errorf("torn confidence %d", conf)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()

			s := p.Snapshot()
			if s.Updates != updaters*iters {
				t.Fatalf("Updates = %d, want %d", s.Updates, updaters*iters)
			}
			if s.Predictions+s.NoPrediction != predictCalls.Load() {
				t.Fatalf("predictions %d + noPrediction %d != calls %d",
					s.Predictions, s.NoPrediction, predictCalls.Load())
			}
			if s.Misses > s.Updates {
				t.Fatalf("misses %d > updates %d", s.Misses, s.Updates)
			}
			var hits int64
			for _, ts := range s.Tables {
				hits += ts.Hits
				if ts.Valid > ts.Entries {
					t.Fatalf("table %s: %d valid in %d slots", ts.Table, ts.Valid, ts.Entries)
				}
			}
			if hits != s.Predictions {
				t.Fatalf("per-table hits %d != predictions %d", hits, s.Predictions)
			}
		})
	}
}
