package predict

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icilk/internal/metrics"
)

func TestSizeBucket(t *testing.T) {
	cases := []struct {
		n    int
		want uint8
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {63, 6}, {64, 7},
		{1 << 10, 11}, {64 << 10, 17},
	}
	for _, c := range cases {
		if got := SizeBucket(c.n); got != c.want {
			t.Errorf("SizeBucket(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{BaseBits: 21},
		{TableBits: 25},
		{HistoryLengths: []int{0}},
		{HistoryLengths: []int{9}},
		{HistoryLengths: []int{2, 2}},
		{HistoryLengths: []int{4, 2}},
		{HistoryLengths: []int{1, 2, 3, 4, 5}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: New accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := New(Config{}); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

func TestColdStartNoPrediction(t *testing.T) {
	p, _ := New(Config{})
	if _, _, ok := p.Predict(Class{Op: 1, Size: 2}); ok {
		t.Fatal("fresh predictor returned a prediction")
	}
	s := p.Snapshot()
	if s.NoPrediction != 1 || s.Predictions != 0 {
		t.Fatalf("counters after cold miss: %+v", s)
	}
}

// TestLearningConvergence drives a stable class and checks the
// predictor converges on its service time at full confidence, with
// mispredicts confined to the cold start.
func TestLearningConvergence(t *testing.T) {
	p, _ := New(Config{})
	c := Class{Op: 3, Size: 7}
	const svc = time.Millisecond
	for i := 0; i < 100; i++ {
		p.Update(c, svc)
	}
	est, conf, ok := p.Predict(c)
	if !ok {
		t.Fatal("no prediction after training")
	}
	if conf != ConfMax {
		t.Fatalf("confidence = %d after stable training, want %d", conf, ConfMax)
	}
	if err := (est - svc).Abs(); err > svc/10 {
		t.Fatalf("estimate %v not within 10%% of %v", est, svc)
	}
	// The cold-start miss is expected; a converged predictor must not
	// keep missing a constant-cost class.
	if m := p.Misses(); m > 5 {
		t.Fatalf("%d mispredicts over 100 constant-cost updates", m)
	}
	if u := p.Updates(); u != 100 {
		t.Fatalf("Updates() = %d, want 100", u)
	}
}

// TestConfidenceAgesOnMispredict trains a class to saturation and then
// feeds a wildly different measurement: confidence must halve on each
// error so stale estimates lose their admission-gating power fast.
func TestConfidenceAgesOnMispredict(t *testing.T) {
	p, _ := New(Config{})
	c := Class{Op: 4, Size: 1}
	for i := 0; i < 50; i++ {
		p.Update(c, time.Millisecond)
	}
	if _, conf, _ := p.Predict(c); conf != ConfMax {
		t.Fatalf("confidence = %d before phase change, want %d", conf, ConfMax)
	}
	p.Update(c, 50*time.Millisecond)
	_, conf, ok := p.Predict(c)
	if !ok {
		t.Fatal("prediction vanished on phase change")
	}
	if conf > ConfMax/2 {
		t.Fatalf("confidence = %d after mispredict, want <= %d", conf, ConfMax/2)
	}
	// An erratic class (every measurement far outside tolerance of the
	// last) can never hold confidence: each provider halves on every
	// error and freshly allocated entries start at zero.
	for i := 0; i < 6; i++ {
		p.Update(c, time.Duration(10<<uint(i))*time.Millisecond)
	}
	if _, conf, _ := p.Predict(c); conf > 1 {
		t.Fatalf("confidence = %d for an erratic class", conf)
	}
}

// TestValueRollover checks the 38-bit estimate field saturates instead
// of wrapping: absurd measured times clamp to the ~275s ceiling, and
// negative ones are dropped.
func TestValueRollover(t *testing.T) {
	p, _ := New(Config{})
	c := Class{Op: 5, Size: 5}
	for i := 0; i < 200; i++ {
		p.Update(c, time.Hour) // 3.6e12 ns >> valueMask
	}
	est, _, ok := p.Predict(c)
	if !ok {
		t.Fatal("no prediction")
	}
	if est > time.Duration(valueMask) {
		t.Fatalf("estimate %v exceeds the packed-field ceiling %v", est, time.Duration(valueMask))
	}
	if est < time.Duration(valueMask)/2 {
		t.Fatalf("estimate %v did not converge toward the clamped ceiling", est)
	}
	before := p.Updates()
	p.Update(c, -time.Second)
	if p.Updates() != before {
		t.Fatal("negative service time was counted as an update")
	}
}

// TestAllocateAgingAndAlias is a white-box check of TAGE's replacement
// rule: a live (useful > 0) victim in a tagged slot is aged, not
// evicted, one step per allocation attempt; only once its useful
// counter hits zero does the next allocation replace it, counting an
// alias.
func TestAllocateAgingAndAlias(t *testing.T) {
	p, _ := New(Config{})
	c := Class{Op: 9, Size: 3}
	key := c.key()

	// Plant a differently-tagged live victim in every tagged table at
	// the slot class c hashes to under an empty history. Tag 0 never
	// matches tagFor, so the victims always mismatch.
	for i := range p.tag {
		tb := &p.tag[i]
		tb.entries[tb.index(key, 0)].Store(packEntry(1000, 0, 3, usefMax))
	}

	// Each allocation round ages every victim by one (age -> continue to
	// the next table), evicting none.
	for round := 1; round <= usefMax; round++ {
		p.allocate(-1, key, 0, 7777)
		for i := range p.tag {
			tb := &p.tag[i]
			e := tb.entries[tb.index(key, 0)].Load()
			if entryTag(e) != 0 || entryVal(e) != 1000 {
				t.Fatalf("round %d: table %d victim evicted early: %#x", round, i, e)
			}
			if got := entryUsef(e); got != uint64(usefMax-round) {
				t.Fatalf("round %d: table %d useful = %d, want %d", round, i, got, usefMax-round)
			}
			if tb.aliases.Load() != 0 {
				t.Fatalf("round %d: alias counted while victims were live", round)
			}
		}
	}

	// All victims are now at useful 0: the next allocation replaces the
	// first table's victim and stops there.
	p.allocate(-1, key, 0, 7777)
	t0 := &p.tag[0]
	e := t0.entries[t0.index(key, 0)].Load()
	if entryTag(e) != t0.tagFor(key, 0) || entryVal(e) != 7777 {
		t.Fatalf("allocation did not install the new entry: %#x", e)
	}
	if entryConf(e) != 0 || entryUsef(e) != 0 {
		t.Fatalf("new entry not installed cold: conf=%d usef=%d", entryConf(e), entryUsef(e))
	}
	if got := t0.aliases.Load(); got != 1 {
		t.Fatalf("table 0 aliases = %d, want 1", got)
	}
	for i := 1; i < len(p.tag); i++ {
		tb := &p.tag[i]
		if e := tb.entries[tb.index(key, 0)].Load(); entryVal(e) != 1000 {
			t.Fatalf("table %d touched after install: %#x", i, e)
		}
	}
}

// TestTaggedTableSeparatesHistory exercises the predictor's reason to
// exist: one class whose cost depends on what completed just before
// it. The base table can only learn the blend; a tagged
// history-indexed entry learns each context. After training, the
// prediction must track the context.
func TestTaggedTableSeparatesHistory(t *testing.T) {
	p, _ := New(Config{})
	a := Class{Op: 1, Size: 1}
	b := Class{Op: 2, Size: 1}
	x := Class{Op: 3, Size: 1}
	const afterA = time.Millisecond
	const afterB = 8 * time.Millisecond
	for i := 0; i < 400; i++ {
		p.Update(a, 500*time.Microsecond)
		p.Update(x, afterA)
		p.Update(b, 500*time.Microsecond)
		p.Update(x, afterB)
	}
	// Recreate each context and read the prediction for x.
	p.Update(a, 500*time.Microsecond)
	estA, _, okA := p.Predict(x)
	p.Update(x, afterA) // keep the training pattern intact
	p.Update(b, 500*time.Microsecond)
	estB, _, okB := p.Predict(x)
	if !okA || !okB {
		t.Fatal("no prediction in a trained context")
	}
	if estA >= estB {
		t.Fatalf("history-blind predictions: after-A %v >= after-B %v", estA, estB)
	}
	if estA > 3*afterA {
		t.Fatalf("after-A estimate %v nowhere near %v", estA, afterA)
	}
	if estB < afterB/3 {
		t.Fatalf("after-B estimate %v nowhere near %v", estB, afterB)
	}
	// The tagged tables, not the base table, must be providing.
	s := p.Snapshot()
	var taggedHits int64
	for _, ts := range s.Tables {
		if ts.Table != "base" {
			taggedHits += ts.Hits
		}
	}
	if taggedHits == 0 {
		t.Fatal("no tagged-table provider hits despite history-dependent costs")
	}
}

// TestAliasingUnderPressure crams far more (class, history) pairs than
// tiny tagged tables can hold and checks the accounting stays sane:
// aliases are counted, occupancy never exceeds capacity, and the
// predictor keeps answering.
func TestAliasingUnderPressure(t *testing.T) {
	p, err := New(Config{BaseBits: 4, TableBits: 2, HistoryLengths: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		c := Class{Op: uint8(i % 37), Size: uint8(i % 11)}
		// Costs spread over two decades so most provider predictions
		// mispredict, forcing constant allocation pressure.
		p.Update(c, time.Duration(100+(i%100)*90)*time.Microsecond)
	}
	s := p.Snapshot()
	var aliases int64
	for _, ts := range s.Tables {
		if ts.Valid > ts.Entries {
			t.Fatalf("table %s: %d valid entries in %d slots", ts.Table, ts.Valid, ts.Entries)
		}
		if ts.Table != "base" {
			aliases += ts.Aliases
		}
	}
	if aliases == 0 {
		t.Fatal("no aliases recorded despite 407 classes in 4-entry tagged tables")
	}
	if s.Updates != 4000 {
		t.Fatalf("Updates = %d, want 4000", s.Updates)
	}
	if s.MissRate <= 0 || s.MissRate > 1 {
		t.Fatalf("MissRate = %v out of range", s.MissRate)
	}
	if _, _, ok := p.Predict(Class{Op: 1, Size: 1}); !ok {
		// Op 1 / Size 1 was updated recently enough that at least the
		// base table must hold it.
		t.Fatal("predictor stopped answering under aliasing pressure")
	}
}

// TestPredictPathDoesNotAllocate pins the package-doc promise: Predict
// is atomic loads and arithmetic only, so admission can call it on the
// shed decision path without touching the allocator.
func TestPredictPathDoesNotAllocate(t *testing.T) {
	p, _ := New(Config{})
	c := Class{Op: 6, Size: 4}
	for i := 0; i < 32; i++ {
		p.Update(c, 2*time.Millisecond)
	}
	var est time.Duration
	allocs := testing.AllocsPerRun(200, func() {
		est, _, _ = p.Predict(c)
	})
	if allocs != 0 {
		t.Fatalf("Predict allocated %v times per call", allocs)
	}
	if est == 0 {
		t.Fatal("prediction lost during alloc measurement")
	}
}

func TestMetricsExport(t *testing.T) {
	p, _ := New(Config{})
	reg := metrics.NewRegistry()
	p.RegisterMetrics(reg)
	p.Update(Class{Op: 1, Size: 1}, time.Millisecond)
	p.Predict(Class{Op: 1, Size: 1})
	out := reg.String()
	for _, want := range []string{
		"icilk_predict_predictions_total",
		"icilk_predict_unpredicted_total",
		"icilk_predict_updates_total",
		"icilk_predict_misses_total",
		`icilk_predict_table_hits_total{table="base"}`,
		`icilk_predict_table_aliases_total{table="tagged0"}`,
		"icilk_predict_abs_error_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %s", want)
		}
	}
}

// TestConcurrentUpdatePredict hammers Update and Predict from many
// goroutines at once; under -race this checks the lock-free paths, and
// the counter identities must hold exactly afterwards.
func TestConcurrentUpdatePredict(t *testing.T) {
	p, _ := New(Config{TableBits: 4}) // small tables: maximize CAS contention
	const (
		workers = 4
		iters   = 2000
	)
	var predictCalls atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c := Class{Op: uint8((w*31 + i) % 17), Size: uint8(i % 5)}
				if i%2 == 0 {
					p.Update(c, time.Duration(100+i%900)*time.Microsecond)
				} else {
					est, conf, ok := p.Predict(c)
					predictCalls.Add(1)
					if ok && (est < 0 || est > time.Duration(valueMask) || conf > ConfMax) {
						t.Errorf("torn prediction: est=%v conf=%d", est, conf)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	s := p.Snapshot()
	if s.Updates != workers*iters/2 {
		t.Fatalf("Updates = %d, want %d", s.Updates, workers*iters/2)
	}
	if s.Predictions+s.NoPrediction != predictCalls.Load() {
		t.Fatalf("predictions %d + noPrediction %d != calls %d",
			s.Predictions, s.NoPrediction, predictCalls.Load())
	}
	var hits int64
	for _, ts := range s.Tables {
		hits += ts.Hits
	}
	if hits != s.Predictions {
		t.Fatalf("per-table hits %d != predictions %d", hits, s.Predictions)
	}
}
