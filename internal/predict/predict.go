// Package predict is the runtime's service-time predictor: a
// TAGE-style tagged-history table bank that learns, from measured
// service times fed back at task completion, how long a request of a
// given class will run — so admission control can shed on a
// *predicted* deadline miss instead of waiting for CoDel's rear-view
// sojourn signal, and the scheduler can order same-priority work by
// predicted slack instead of FIFO arrival.
//
// The design ports the branch-predictor playbook (Seznec's TAGE) to
// request scheduling:
//
//   - A base table, direct-mapped on the request class alone (opcode ×
//     value-size bucket), always provides a fallback prediction — the
//     bimodal table of a branch predictor.
//   - Two or three tagged tables indexed by a hash of the class AND a
//     geometric-length suffix of the recent class path (the last 2, 4,
//     8 completions by default). A request whose cost depends on what
//     ran just before it — cache-warming effects, store contention,
//     phase behaviour — hits in a long-history table; a request whose
//     cost is a pure function of its class is served by the base
//     table. The longest-history hit wins, exactly TAGE's provider
//     rule.
//   - Each entry carries a saturating confidence counter (predictions
//     are only *used* above a confidence floor; below it the caller
//     falls back to its reactive policy) and a useful counter that
//     makes entries resist replacement while they are paying their
//     way. Allocation on a misprediction decrements victims' useful
//     bits first — the aging that keeps one noisy class from wiping
//     the bank.
//
// Every structure is a fixed-size array of packed atomic words:
// Predict performs only atomic loads and arithmetic (zero allocation,
// no locks — verified by TestPredictPathDoesNotAllocate), so it can
// sit directly on the admission decision path. Update is CAS-based
// and runs on the completion path, off the SpawnSync hot path
// entirely (see DESIGN.md, "Prediction cost model").
package predict

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"icilk/internal/invariant"
	"icilk/internal/invariant/perturb"
	"icilk/internal/metrics"
	"icilk/internal/stats"
	"icilk/internal/xrand"
)

// Class identifies a request class: an application-defined opcode and
// a value-size bucket (SizeBucket). Two requests in one class are
// expected to have similar service times; the tagged tables then
// separate history-dependent cost variation within a class.
type Class struct {
	// Op is the application opcode (memcached command, email
	// operation, job kind, ...). Values only need to be stable, not
	// dense.
	Op uint8
	// Size is the value-size bucket, usually SizeBucket(payload
	// length); 0 for sizeless operations.
	Size uint8
}

// SizeBucket buckets a payload length logarithmically (bucket i covers
// [2^(i-1), 2^i) bytes; 0 covers 0). Log bucketing keeps the class
// space small while separating the size decades that dominate
// service-time variance in value-size-dependent workloads.
func SizeBucket(n int) uint8 {
	if n <= 0 {
		return 0
	}
	return uint8(bits.Len(uint(n)))
}

// key folds a class into the 16-bit value hashed into every index.
func (c Class) key() uint64 { return uint64(c.Op)<<8 | uint64(c.Size) }

func (c Class) String() string { return fmt.Sprintf("op%d/sz%d", c.Op, c.Size) }

// Entry packing: one atomic uint64 per table slot.
//
//	bits  0..37  service-time estimate, nanoseconds (≈275s max)
//	bits 38..49  partial tag (tagged tables; 0 in the base table)
//	bits 50..52  confidence, saturating 0..7
//	bits 53..54  useful, saturating 0..3
//	bit  55      valid
const (
	valueBits  = 38
	valueMask  = 1<<valueBits - 1
	tagShift   = valueBits
	tagBits    = 12
	tagMask    = 1<<tagBits - 1
	confShift  = tagShift + tagBits
	confMask   = 0x7
	ConfMax    = 7 // saturation ceiling of the confidence counter
	usefShift  = confShift + 3
	usefMask   = 0x3
	usefMax    = 3
	validShift = usefShift + 2
	validBit   = uint64(1) << validShift
)

func packEntry(valNS int64, tag, conf, usef uint64) uint64 {
	if valNS < 0 {
		valNS = 0
	}
	if valNS > valueMask {
		valNS = valueMask
	}
	return uint64(valNS) | tag<<tagShift | conf<<confShift | usef<<usefShift | validBit
}

func entryVal(e uint64) int64   { return int64(e & valueMask) }
func entryTag(e uint64) uint64  { return e >> tagShift & tagMask }
func entryConf(e uint64) uint64 { return e >> confShift & confMask }
func entryUsef(e uint64) uint64 { return e >> usefShift & usefMask }
func entryValid(e uint64) bool  { return e&validBit != 0 }

// Config sizes the predictor. The zero value is usable (defaults in
// parentheses).
type Config struct {
	// BaseBits is log2 of the base-table entry count (10 → 1024).
	BaseBits int
	// TableBits is log2 of each tagged table's entry count (9 → 512).
	TableBits int
	// HistoryLengths gives each tagged table's class-path history
	// length in completions, shortest first; lengths must be in [1, 8]
	// and there may be at most 4 tables ({2, 4, 8} — geometric, like
	// TAGE's history series).
	HistoryLengths []int
	// EWMAShift is the estimate's exponential-moving-average step:
	// new = old + (measured-old)/2^EWMAShift (3 → 1/8).
	EWMAShift int
	// MispredictTolerance is the relative error within which a
	// prediction counts as correct, e.g. 0.25 = ±25% (0.25). Absolute
	// errors under 20µs are always tolerated, so microsecond jitter on
	// microsecond requests does not thrash confidence.
	MispredictTolerance float64
}

func (c *Config) applyDefaults() error {
	if c.BaseBits <= 0 {
		c.BaseBits = 10
	}
	if c.TableBits <= 0 {
		c.TableBits = 9
	}
	if c.BaseBits > 20 || c.TableBits > 20 {
		return fmt.Errorf("predict: table bits out of range (base %d, tagged %d; max 20)", c.BaseBits, c.TableBits)
	}
	if c.HistoryLengths == nil {
		c.HistoryLengths = []int{2, 4, 8}
	}
	if len(c.HistoryLengths) > 4 {
		return fmt.Errorf("predict: at most 4 tagged tables, got %d", len(c.HistoryLengths))
	}
	for i, h := range c.HistoryLengths {
		if h < 1 || h > 8 {
			return fmt.Errorf("predict: history length %d out of range [1,8]", h)
		}
		if i > 0 && h <= c.HistoryLengths[i-1] {
			return fmt.Errorf("predict: history lengths must be strictly increasing, got %v", c.HistoryLengths)
		}
	}
	if c.EWMAShift <= 0 {
		c.EWMAShift = 3
	}
	if c.MispredictTolerance <= 0 {
		c.MispredictTolerance = 0.25
	}
	return nil
}

// absTolerance is the absolute error always forgiven by the
// mispredict classification (see Config.MispredictTolerance).
const absTolerance = 20 * time.Microsecond

// table is one tagged (or base) table: a power-of-two array of packed
// entries plus its hit/alias accounting.
type table struct {
	entries []atomic.Uint64
	mask    uint64
	histLen int // class-path completions hashed into the index; 0 = base

	hits    atomic.Int64 // provider hits (Predict served from here)
	aliases atomic.Int64 // tag replacements (a new class evicted a live entry)
}

// Predictor is a concurrent service-time predictor. All methods are
// safe for concurrent use from any goroutine.
type Predictor struct {
	cfg  Config
	base table
	tag  []table // shortest history first

	// hist is the global class-path register: each completion shifts
	// in one hashed byte of its class, so the low 8k bits are the last
	// k completions. Updated with a CAS loop; a lost race only skews
	// the (already approximate) path hash.
	hist atomic.Uint64

	predictions  atomic.Int64 // Predict calls that returned a valid estimate
	noPrediction atomic.Int64 // Predict calls with no valid entry anywhere
	updates      atomic.Int64
	misses       atomic.Int64 // updates whose provider prediction was outside tolerance

	absErrSum atomic.Int64 // ns, for the snapshot's mean
	absErr    *stats.Histogram
}

// New builds a predictor. The zero Config is usable.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	p := &Predictor{cfg: cfg, absErr: stats.NewHistogram()}
	p.base = newTable(cfg.BaseBits, 0)
	p.tag = make([]table, len(cfg.HistoryLengths))
	for i, h := range cfg.HistoryLengths {
		p.tag[i] = newTable(cfg.TableBits, h)
	}
	return p, nil
}

func newTable(bitsLog int, histLen int) table {
	n := 1 << bitsLog
	return table{entries: make([]atomic.Uint64, n), mask: uint64(n - 1), histLen: histLen}
}

// foldHist extracts the low histLen completions (8 bits each) of the
// path register.
func foldHist(hist uint64, histLen int) uint64 {
	if histLen >= 8 {
		return hist
	}
	return hist & (1<<(8*histLen) - 1)
}

// index and tag hashes. Two different mixes of the same (class, path)
// pair keep index aliasing and tag aliasing independent, as TAGE's
// separate index/tag hash functions do.
func (t *table) index(key, hist uint64) uint64 {
	return xrand.Mix(key, foldHist(hist, t.histLen)) & t.mask
}

func (t *table) tagFor(key, hist uint64) uint64 {
	h := xrand.Mix(key^0x9e3779b97f4a7c15, foldHist(hist, t.histLen))
	tg := h & tagMask
	if tg == 0 {
		tg = 1 // tag 0 is reserved for the base table's untagged entries
	}
	return tg
}

// lookup finds the provider entry for class c under the current
// history: the longest-history tagged table whose entry is valid and
// tag-matches, else the base table. It returns the provider table
// index (-1 = base), the slot, and the loaded entry word (0 when no
// valid entry exists anywhere).
func (p *Predictor) lookup(key, hist uint64) (ti int, slot uint64, e uint64) {
	for i := len(p.tag) - 1; i >= 0; i-- {
		t := &p.tag[i]
		s := t.index(key, hist)
		w := t.entries[s].Load()
		if entryValid(w) && entryTag(w) == t.tagFor(key, hist) {
			return i, s, w
		}
	}
	s := p.base.index(key, 0)
	w := p.base.entries[s].Load()
	if entryValid(w) {
		return -1, s, w
	}
	return -1, s, 0
}

// Predict returns the predicted service time for one request of class
// c and the provider entry's confidence (0..ConfMax). ok is false when
// no table holds a valid entry for the class — the caller then has no
// basis for a cost-aware decision and should fall back to its reactive
// policy (callers should also apply their own confidence floor; see
// admission.Config.PredictConfidence). Zero-allocation and lock-free.
func (p *Predictor) Predict(c Class) (est time.Duration, conf uint8, ok bool) {
	if invariant.Enabled {
		// The read half of the predict/update race: a concurrent Update
		// may be mid-flight between its history shift and its entry CAS.
		perturb.At(perturb.Predict)
	}
	ti, _, e := p.lookup(c.key(), p.hist.Load())
	if e == 0 {
		p.noPrediction.Add(1)
		return 0, 0, false
	}
	p.predictions.Add(1)
	if ti >= 0 {
		p.tag[ti].hits.Add(1)
	} else {
		p.base.hits.Add(1)
	}
	return time.Duration(entryVal(e)), uint8(entryConf(e)), true
}

// Update feeds one measured service time back into the predictor (the
// completion-path hook). It scores the provider's prediction against
// the measurement (mispredict accounting), moves the provider's
// estimate toward it, adjusts confidence, on a misprediction tries to
// allocate an entry in a longer-history table (aging victims' useful
// counters), and shifts the class into the global path register.
func (p *Predictor) Update(c Class, svc time.Duration) {
	ns := svc.Nanoseconds()
	if ns < 0 {
		return
	}
	if ns > valueMask {
		ns = valueMask
	}
	key := c.key()
	hist := p.hist.Load()
	p.updates.Add(1)

	ti, slot, e := p.lookup(key, hist)
	if invariant.Enabled {
		// The write half of the predict/update race: the provider has
		// been chosen from a history snapshot that a concurrent Update
		// may be about to advance.
		perturb.At(perturb.Predict)
	}
	mispredicted := false
	if e != 0 {
		err := entryVal(e) - ns
		if err < 0 {
			err = -err
		}
		p.absErrSum.Add(err)
		p.absErr.Record(time.Duration(err))
		tol := int64(float64(ns) * p.cfg.MispredictTolerance)
		if tol < int64(absTolerance) {
			tol = int64(absTolerance)
		}
		mispredicted = err > tol
		if mispredicted {
			p.misses.Add(1)
		}
		p.updateEntry(ti, slot, key, hist, e, ns, mispredicted)
	} else {
		// Cold class: seed the base table at full value, low confidence.
		p.base.entries[slot].CompareAndSwap(0, packEntry(ns, 0, 1, 0))
		p.misses.Add(1) // a prediction-free decision is a miss by definition
		mispredicted = true
	}

	if mispredicted {
		p.allocate(ti, key, hist, ns)
	}

	// Shift the class into the path register last, so this request's
	// own completion does not perturb the history its entry was trained
	// under.
	hb := xrand.Mix(key, 0xa11ce) & 0xff
	for {
		old := p.hist.Load()
		if p.hist.CompareAndSwap(old, old<<8|hb) {
			break
		}
	}
}

// updateEntry moves the provider entry toward the measurement and
// adjusts its confidence/useful counters (CAS loop; a lost race means
// a concurrent update already trained the entry).
func (p *Predictor) updateEntry(ti int, slot uint64, key, hist uint64, old uint64, ns int64, mispredicted bool) {
	t := &p.base
	tag := uint64(0)
	if ti >= 0 {
		t = &p.tag[ti]
		tag = t.tagFor(key, hist)
	}
	for {
		val := entryVal(old)
		val += (ns - val) >> p.cfg.EWMAShift
		if val == entryVal(old) && ns != entryVal(old) {
			// Sub-resolution step: nudge by one so the EWMA cannot stall
			// short of a nearby target.
			if ns > val {
				val++
			} else {
				val--
			}
		}
		conf := entryConf(old)
		usef := entryUsef(old)
		if mispredicted {
			conf >>= 1 // confidence ages fast on error
		} else {
			if conf < ConfMax {
				conf++
			}
			if usef < usefMax {
				usef++
			}
		}
		if t.entries[slot].CompareAndSwap(old, packEntry(val, tag, conf, usef)) {
			return
		}
		old = t.entries[slot].Load()
		if !entryValid(old) || (ti >= 0 && entryTag(old) != tag) {
			return // entry was evicted underneath us; let the new owner train
		}
	}
}

// allocate tries to install a new entry for (class, history) in one
// table with a longer history than the mispredicting provider
// (provider -1 = base). TAGE's aging rule: a victim with useful > 0 is
// not evicted — its useful counter is decremented instead — so an
// entry must mispredict repeatedly near a live victim before the
// victim is finally replaced; each replacement of a valid entry counts
// as an alias.
func (p *Predictor) allocate(provider int, key, hist uint64, ns int64) {
	for i := provider + 1; i < len(p.tag); i++ {
		t := &p.tag[i]
		slot := t.index(key, hist)
		tag := t.tagFor(key, hist)
		old := t.entries[slot].Load()
		if entryValid(old) && entryTag(old) == tag {
			continue // already present (another update raced us in)
		}
		if entryValid(old) && entryUsef(old) > 0 {
			// Live victim: age it and try the next table.
			t.entries[slot].CompareAndSwap(old,
				packEntry(entryVal(old), entryTag(old), entryConf(old), entryUsef(old)-1))
			continue
		}
		if t.entries[slot].CompareAndSwap(old, packEntry(ns, tag, 0, 0)) {
			if entryValid(old) {
				t.aliases.Add(1)
			}
			return
		}
		return // racing allocator won the slot this round
	}
}

// Predictions returns the count of Predict calls served by a valid
// entry.
func (p *Predictor) Predictions() int64 { return p.predictions.Load() }

// Misses returns the count of updates whose provider prediction was
// outside tolerance (including prediction-free cold classes).
func (p *Predictor) Misses() int64 { return p.misses.Load() }

// Updates returns the count of completed-request feedbacks.
func (p *Predictor) Updates() int64 { return p.updates.Load() }

// TableSnapshot is one table's occupancy and accounting.
type TableSnapshot struct {
	Table   string `json:"table"` // "base" or "tagged<i>"
	Entries int    `json:"entries"`
	HistLen int    `json:"histLen"`
	Valid   int    `json:"valid"`
	Hits    int64  `json:"hits"`
	Aliases int64  `json:"aliases"`
}

// Snapshot is a point-in-time predictor view (the /debug/predict
// payload). Counter fields are monotone; Valid counts require a scan
// and are racy-by-design monitoring reads.
type Snapshot struct {
	Predictions  int64           `json:"predictions"`
	NoPrediction int64           `json:"noPrediction"`
	Updates      int64           `json:"updates"`
	Misses       int64           `json:"misses"`
	MissRate     float64         `json:"missRate"` // misses / updates
	MeanAbsErrMS float64         `json:"meanAbsErrMs"`
	P99AbsErrMS  float64         `json:"p99AbsErrMs"`
	Tables       []TableSnapshot `json:"tables"`
}

func (t *table) snapshot(name string) TableSnapshot {
	s := TableSnapshot{
		Table: name, Entries: len(t.entries), HistLen: t.histLen,
		Hits: t.hits.Load(), Aliases: t.aliases.Load(),
	}
	for i := range t.entries {
		if entryValid(t.entries[i].Load()) {
			s.Valid++
		}
	}
	return s
}

// Snapshot captures the predictor's observable state.
func (p *Predictor) Snapshot() Snapshot {
	s := Snapshot{
		Predictions:  p.predictions.Load(),
		NoPrediction: p.noPrediction.Load(),
		Updates:      p.updates.Load(),
		Misses:       p.misses.Load(),
	}
	if s.Updates > 0 {
		s.MissRate = float64(s.Misses) / float64(s.Updates)
		s.MeanAbsErrMS = float64(p.absErrSum.Load()) / float64(s.Updates) / 1e6
	}
	if p.absErr.Count() > 0 {
		s.P99AbsErrMS = float64(p.absErr.Percentile(99).Microseconds()) / 1000
	}
	s.Tables = append(s.Tables, p.base.snapshot("base"))
	for i := range p.tag {
		s.Tables = append(s.Tables, p.tag[i].snapshot(fmt.Sprintf("tagged%d", i)))
	}
	return s
}

// RegisterMetrics exports the predictor's counters into reg. All
// sources are pull-based atomics; registration adds nothing to the
// predict or update paths.
func (p *Predictor) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("icilk_predict_predictions_total",
		"Service-time predictions served by a valid table entry.",
		func() float64 { return float64(p.predictions.Load()) })
	reg.CounterFunc("icilk_predict_unpredicted_total",
		"Predict calls that found no valid entry (cold classes).",
		func() float64 { return float64(p.noPrediction.Load()) })
	reg.CounterFunc("icilk_predict_updates_total",
		"Measured service times fed back at task completion.",
		func() float64 { return float64(p.updates.Load()) })
	reg.CounterFunc("icilk_predict_misses_total",
		"Updates whose provider prediction was outside tolerance (mispredicts).",
		func() float64 { return float64(p.misses.Load()) })
	names := []metrics.Label{metrics.L("table", "base")}
	tabs := []*table{&p.base}
	for i := range p.tag {
		names = append(names, metrics.L("table", fmt.Sprintf("tagged%d", i)))
		tabs = append(tabs, &p.tag[i])
	}
	for i, t := range tabs {
		t := t
		reg.CounterFunc("icilk_predict_table_hits_total",
			"Provider hits per predictor table.",
			func() float64 { return float64(t.hits.Load()) }, names[i])
		reg.CounterFunc("icilk_predict_table_aliases_total",
			"Valid entries evicted by a differently-tagged allocation.",
			func() float64 { return float64(t.aliases.Load()) }, names[i])
	}
	// Absolute-error histogram: rendered from the fine-grained internal
	// histogram at scrape time, like the app latency histograms.
	reg.RawHistogram("icilk_predict_abs_error_seconds",
		"Absolute service-time prediction error per scored completion.",
		nil, p.absErr)
}
