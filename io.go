package icilk

import "io"

// Conn is the connection surface the I/O-future layer needs. It is
// satisfied by *netsim.Endpoint and *netreal.Conn; a different
// non-blocking socket wrapper could implement it equally well.
type Conn interface {
	// TryRead copies available bytes without blocking; n==0 with a
	// nil error means "would block"; io.EOF means the peer closed.
	TryRead(p []byte) (n int, err error)
	// ArmRead registers a one-shot callback fired when the connection
	// becomes readable (or hits EOF). If readable now, the callback
	// must run synchronously.
	ArmRead(fn func())
	// Write sends bytes to the peer. Implementations may coalesce
	// writes until Flush; the byte slice may be reused once Write
	// returns.
	Write(p []byte) (n int, err error)
	// Flush delivers any coalesced writes to the peer. Runtime.Read
	// flushes automatically before suspending on an I/O future, so
	// handlers only need explicit flushes at response boundaries that
	// are not followed by a read on the same task (e.g. completions
	// written from a separate future routine).
	Flush() error
}

// poolRoutedConn is the capability a connection advertises when its
// armed readiness callbacks are already delivered through the
// runtime's I/O handler threads (shared-poller connections batch
// them there). For such connections the read path completes the
// future directly inside the callback instead of re-submitting it —
// the completion would otherwise cross the I/O pool twice.
type poolRoutedConn interface {
	CompletesViaPool() bool
}

// Read reads from c into p with synchronous semantics but
// asynchronous performance: if no data is available the calling
// task's deque suspends on an I/O future (freeing the worker) and
// resumes when the connection becomes readable. This is the paper's
// I/O-future read — the primitive that let the Memcached port delete
// its event-loop state machine.
func (r *Runtime) Read(t *Task, c Conn, p []byte) (int, error) {
	direct := false
	if pc, ok := c.(poolRoutedConn); ok {
		direct = pc.CompletesViaPool()
	}
	for {
		n, err := c.TryRead(p)
		if n > 0 || err != nil {
			return n, err
		}
		// About to suspend: push any coalesced responses to the peer
		// first, or a closed-loop client would never send the next
		// request. A flush error is sticky in the writer and surfaces
		// on the handler's next write; the read side proceeds.
		c.Flush()
		f := r.rt.NewIOFuture()
		if direct {
			c.ArmRead(func() { f.Complete(nil) })
		} else {
			c.ArmRead(func() { r.CompleteIO(f, nil) })
		}
		f.Get(t)
	}
}

// ReadFull reads exactly len(p) bytes (or fails with io.EOF /
// io.ErrUnexpectedEOF), suspending on I/O futures as needed.
func (r *Runtime) ReadFull(t *Task, c Conn, p []byte) (int, error) {
	total := 0
	for total < len(p) {
		n, err := r.Read(t, c, p[total:])
		total += n
		if err != nil {
			if err == io.EOF && total > 0 && total < len(p) {
				return total, io.ErrUnexpectedEOF
			}
			return total, err
		}
	}
	return total, nil
}

// LineReader incrementally parses a byte stream into lines and fixed
// blocks, suspending the calling task on I/O futures when the stream
// runs dry. Protocol handlers (the Memcached text protocol) build on
// it.
//
// The *Bytes accessors return views into the reader's internal
// buffer: valid only until the next call that can fill or compact the
// buffer (any Read*/Peek on the same reader). Handlers that need a
// field across that boundary — e.g. a key parsed from a command line
// that must survive reading the value block — copy it to their own
// scratch first.
type LineReader struct {
	r   *Runtime
	c   Conn
	buf []byte
	pos int // consumed prefix of buf
}

// NewLineReader wraps c.
func (r *Runtime) NewLineReader(c Conn) *LineReader {
	return &LineReader{r: r, c: c, buf: make([]byte, 0, 512)}
}

// fill reads more data directly into the buffer's spare capacity
// (compacting the consumed prefix first, growing only when full),
// suspending if necessary. Steady state performs no allocation.
// Returns an error on EOF.
func (lr *LineReader) fill(t *Task) error {
	// Compact consumed prefix. This invalidates outstanding *Bytes
	// views — see the type comment.
	if lr.pos > 0 {
		rest := copy(lr.buf, lr.buf[lr.pos:])
		lr.buf = lr.buf[:rest]
		lr.pos = 0
	}
	if len(lr.buf) == cap(lr.buf) {
		grown := make([]byte, len(lr.buf), 2*cap(lr.buf))
		copy(grown, lr.buf)
		lr.buf = grown
	}
	n, err := lr.r.Read(t, lr.c, lr.buf[len(lr.buf):cap(lr.buf)])
	if n > 0 {
		lr.buf = lr.buf[:len(lr.buf)+n]
		return nil
	}
	if err != nil {
		return err
	}
	return nil
}

// ReadLine returns the next CRLF- or LF-terminated line (without the
// terminator), suspending until one is available. The line is copied
// into a fresh string; hot paths use ReadLineBytes.
func (lr *LineReader) ReadLine(t *Task) (string, error) {
	line, err := lr.ReadLineBytes(t)
	if err != nil {
		return "", err
	}
	return string(line), nil
}

// ReadLineBytes returns the next CRLF- or LF-terminated line (without
// the terminator) as a view into the internal buffer, suspending
// until one is available. Valid until the next read on this reader.
func (lr *LineReader) ReadLineBytes(t *Task) ([]byte, error) {
	for {
		if i := indexByte(lr.buf[lr.pos:], '\n'); i >= 0 {
			line := lr.buf[lr.pos : lr.pos+i]
			lr.pos += i + 1
			// Strip optional CR.
			if len(line) > 0 && line[len(line)-1] == '\r' {
				line = line[:len(line)-1]
			}
			return line, nil
		}
		if err := lr.fill(t); err != nil {
			return nil, err
		}
	}
}

// ReadBlock returns the next n bytes followed by CRLF (the Memcached
// data-block framing), suspending until available. The block is a
// fresh copy the caller may retain.
func (lr *LineReader) ReadBlock(t *Task, n int) ([]byte, error) {
	block, err := lr.ReadBlockBytes(t, n)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, block)
	return out, nil
}

// ReadBlockBytes returns the next n bytes followed by CRLF as a view
// into the internal buffer, suspending until available. Valid until
// the next read on this reader.
func (lr *LineReader) ReadBlockBytes(t *Task, n int) ([]byte, error) {
	for len(lr.buf)-lr.pos < n+2 {
		if err := lr.fill(t); err != nil {
			return nil, err
		}
	}
	block := lr.buf[lr.pos : lr.pos+n]
	lr.pos += n + 2 // skip trailing CRLF
	return block, nil
}

// PeekByte returns the next byte without consuming it, suspending
// until one is available. Servers that speak several protocols on one
// port use it to sniff the framing (memcached's binary protocol is
// detected by a 0x80 first byte).
func (lr *LineReader) PeekByte(t *Task) (byte, error) {
	for lr.pos >= len(lr.buf) {
		if err := lr.fill(t); err != nil {
			return 0, err
		}
	}
	return lr.buf[lr.pos], nil
}

// ReadExact returns the next n bytes with no framing assumptions
// (binary protocols), suspending until available. The bytes are a
// fresh copy the caller may retain.
func (lr *LineReader) ReadExact(t *Task, n int) ([]byte, error) {
	block, err := lr.ReadExactBytes(t, n)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, block)
	return out, nil
}

// ReadExactBytes returns the next n bytes with no framing assumptions
// as a view into the internal buffer, suspending until available.
// Valid until the next read on this reader.
func (lr *LineReader) ReadExactBytes(t *Task, n int) ([]byte, error) {
	for len(lr.buf)-lr.pos < n {
		if err := lr.fill(t); err != nil {
			return nil, err
		}
	}
	out := lr.buf[lr.pos : lr.pos+n]
	lr.pos += n
	return out, nil
}

// Buffered reports whether unconsumed bytes are already available
// (used by servers to batch multiple pipelined requests before
// yielding, as the pthread Memcached does up to a threshold).
func (lr *LineReader) Buffered() bool { return lr.pos < len(lr.buf) }

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}
