package icilk

import "io"

// Conn is the connection surface the I/O-future layer needs. It is
// satisfied by *netsim.Endpoint; a real non-blocking socket wrapper
// could implement it equally well.
type Conn interface {
	// TryRead copies available bytes without blocking; n==0 with a
	// nil error means "would block"; io.EOF means the peer closed.
	TryRead(p []byte) (n int, err error)
	// ArmRead registers a one-shot callback fired when the connection
	// becomes readable (or hits EOF). If readable now, the callback
	// must run synchronously.
	ArmRead(fn func())
	// Write sends bytes to the peer.
	Write(p []byte) (n int, err error)
}

// Read reads from c into p with synchronous semantics but
// asynchronous performance: if no data is available the calling
// task's deque suspends on an I/O future (freeing the worker) and
// resumes when the connection becomes readable. This is the paper's
// I/O-future read — the primitive that let the Memcached port delete
// its event-loop state machine.
func (r *Runtime) Read(t *Task, c Conn, p []byte) (int, error) {
	for {
		n, err := c.TryRead(p)
		if n > 0 || err != nil {
			return n, err
		}
		f := r.rt.NewIOFuture()
		c.ArmRead(func() { r.CompleteIO(f, nil) })
		f.Get(t)
	}
}

// ReadFull reads exactly len(p) bytes (or fails with io.EOF /
// io.ErrUnexpectedEOF), suspending on I/O futures as needed.
func (r *Runtime) ReadFull(t *Task, c Conn, p []byte) (int, error) {
	total := 0
	for total < len(p) {
		n, err := r.Read(t, c, p[total:])
		total += n
		if err != nil {
			if err == io.EOF && total > 0 && total < len(p) {
				return total, io.ErrUnexpectedEOF
			}
			return total, err
		}
	}
	return total, nil
}

// LineReader incrementally parses a byte stream into lines and fixed
// blocks, suspending the calling task on I/O futures when the stream
// runs dry. Protocol handlers (the Memcached text protocol) build on
// it.
type LineReader struct {
	r   *Runtime
	c   Conn
	buf []byte
	pos int // consumed prefix of buf
}

// NewLineReader wraps c.
func (r *Runtime) NewLineReader(c Conn) *LineReader {
	return &LineReader{r: r, c: c, buf: make([]byte, 0, 512)}
}

// fill reads more data, suspending if necessary. Returns an error on
// EOF.
func (lr *LineReader) fill(t *Task) error {
	// Compact consumed prefix.
	if lr.pos > 0 {
		rest := copy(lr.buf, lr.buf[lr.pos:])
		lr.buf = lr.buf[:rest]
		lr.pos = 0
	}
	var chunk [512]byte
	n, err := lr.r.Read(t, lr.c, chunk[:])
	if n > 0 {
		lr.buf = append(lr.buf, chunk[:n]...)
		return nil
	}
	if err != nil {
		return err
	}
	return nil
}

// ReadLine returns the next CRLF- or LF-terminated line (without the
// terminator), suspending until one is available.
func (lr *LineReader) ReadLine(t *Task) (string, error) {
	for {
		if i := indexByte(lr.buf[lr.pos:], '\n'); i >= 0 {
			line := lr.buf[lr.pos : lr.pos+i]
			lr.pos += i + 1
			// Strip optional CR.
			if len(line) > 0 && line[len(line)-1] == '\r' {
				line = line[:len(line)-1]
			}
			return string(line), nil
		}
		if err := lr.fill(t); err != nil {
			return "", err
		}
	}
}

// ReadBlock returns the next n bytes followed by CRLF (the Memcached
// data-block framing), suspending until available.
func (lr *LineReader) ReadBlock(t *Task, n int) ([]byte, error) {
	for len(lr.buf)-lr.pos < n+2 {
		if err := lr.fill(t); err != nil {
			return nil, err
		}
	}
	block := make([]byte, n)
	copy(block, lr.buf[lr.pos:lr.pos+n])
	lr.pos += n + 2 // skip trailing CRLF
	return block, nil
}

// PeekByte returns the next byte without consuming it, suspending
// until one is available. Servers that speak several protocols on one
// port use it to sniff the framing (memcached's binary protocol is
// detected by a 0x80 first byte).
func (lr *LineReader) PeekByte(t *Task) (byte, error) {
	for lr.pos >= len(lr.buf) {
		if err := lr.fill(t); err != nil {
			return 0, err
		}
	}
	return lr.buf[lr.pos], nil
}

// ReadExact returns the next n bytes with no framing assumptions
// (binary protocols), suspending until available.
func (lr *LineReader) ReadExact(t *Task, n int) ([]byte, error) {
	for len(lr.buf)-lr.pos < n {
		if err := lr.fill(t); err != nil {
			return nil, err
		}
	}
	out := make([]byte, n)
	copy(out, lr.buf[lr.pos:lr.pos+n])
	lr.pos += n
	return out, nil
}

// Buffered reports whether unconsumed bytes are already available
// (used by servers to batch multiple pipelined requests before
// yielding, as the pthread Memcached does up to a threshold).
func (lr *LineReader) Buffered() bool { return lr.pos < len(lr.buf) }

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}
