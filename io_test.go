package icilk

import (
	"io"
	"testing"
	"time"

	"icilk/internal/netreal"
	"icilk/internal/netsim"
)

// Compile-time checks: both connection implementations satisfy Conn.
var (
	_ Conn = (*netsim.Endpoint)(nil)
	_ Conn = (*netreal.Conn)(nil)
)

func TestLineReaderSplitAcrossFills(t *testing.T) {
	rt := newRT(t, Config{Workers: 1, Levels: 1})
	cli, srv := netsim.Pipe()
	go func() {
		// A line and a block, dribbled byte by byte across the CRLF
		// boundaries.
		payload := "set x 0 0 3\r\nabc\r\nnext\r\n"
		for i := 0; i < len(payload); i++ {
			cli.WriteString(payload[i : i+1])
			time.Sleep(100 * time.Microsecond)
		}
	}()
	got := rt.Run(func(task *Task) any {
		lr := rt.NewLineReader(srv)
		line, err := lr.ReadLine(task)
		if err != nil {
			return err
		}
		block, err := lr.ReadBlock(task, 3)
		if err != nil {
			return err
		}
		line2, err := lr.ReadLine(task)
		if err != nil {
			return err
		}
		return line + "|" + string(block) + "|" + line2
	})
	if got != "set x 0 0 3|abc|next" {
		t.Fatalf("got %v", got)
	}
}

func TestLineReaderEOFMidLine(t *testing.T) {
	rt := newRT(t, Config{Workers: 1, Levels: 1})
	cli, srv := netsim.Pipe()
	cli.WriteString("unterminated")
	cli.Close()
	got := rt.Run(func(task *Task) any {
		lr := rt.NewLineReader(srv)
		_, err := lr.ReadLine(task)
		return err
	})
	if got != io.EOF {
		t.Fatalf("err = %v, want EOF", got)
	}
}

func TestLineReaderEOFMidBlock(t *testing.T) {
	rt := newRT(t, Config{Workers: 1, Levels: 1})
	cli, srv := netsim.Pipe()
	cli.WriteString("ab") // block needs 4+2 bytes
	cli.Close()
	got := rt.Run(func(task *Task) any {
		lr := rt.NewLineReader(srv)
		_, err := lr.ReadBlock(task, 4)
		return err
	})
	if got != io.EOF {
		t.Fatalf("err = %v, want EOF", got)
	}
}

func TestPeekByteDoesNotConsume(t *testing.T) {
	rt := newRT(t, Config{Workers: 1, Levels: 1})
	cli, srv := netsim.Pipe()
	cli.WriteString("Z-line\r\n")
	got := rt.Run(func(task *Task) any {
		lr := rt.NewLineReader(srv)
		b, err := lr.PeekByte(task)
		if err != nil || b != 'Z' {
			t.Errorf("peek = %c, %v", b, err)
		}
		// Peek again: same byte.
		b2, _ := lr.PeekByte(task)
		if b2 != 'Z' {
			t.Errorf("second peek = %c", b2)
		}
		line, _ := lr.ReadLine(task)
		return line
	})
	if got != "Z-line" {
		t.Fatalf("line = %v", got)
	}
}

func TestReadExactSpansChunks(t *testing.T) {
	rt := newRT(t, Config{Workers: 1, Levels: 1})
	cli, srv := netsim.Pipe()
	go func() {
		big := make([]byte, 2000)
		for i := range big {
			big[i] = byte(i % 251)
		}
		// Two writes, splitting the frame.
		cli.Write(big[:700])
		time.Sleep(time.Millisecond)
		cli.Write(big[700:])
	}()
	got := rt.Run(func(task *Task) any {
		lr := rt.NewLineReader(srv)
		b, err := lr.ReadExact(task, 2000)
		if err != nil {
			return err
		}
		for i := range b {
			if b[i] != byte(i%251) {
				return i
			}
		}
		return "ok"
	})
	if got != "ok" {
		t.Fatalf("got %v", got)
	}
}

func TestConcurrentConnectionsShareWorker(t *testing.T) {
	// One worker serving 8 connections: every request must still get
	// a response (the scheduler time-multiplexes via I/O futures).
	rt := newRT(t, Config{Workers: 1, Levels: 1})
	const conns = 8
	type pair struct{ cli, srv *netsim.Endpoint }
	ps := make([]pair, conns)
	for i := range ps {
		ps[i].cli, ps[i].srv = netsim.Pipe()
		srv := ps[i].srv
		rt.Submit(0, func(task *Task) any {
			lr := rt.NewLineReader(srv)
			for {
				line, err := lr.ReadLine(task)
				if err != nil {
					return nil
				}
				srv.WriteString("echo:" + line + "\n")
			}
		})
	}
	for round := 0; round < 5; round++ {
		for i := range ps {
			ps[i].cli.WriteString("ping\n")
		}
		for i := range ps {
			var buf [32]byte
			n, err := ps[i].cli.Read(buf[:])
			if err != nil || string(buf[:n]) != "echo:ping\n" {
				t.Fatalf("conn %d round %d: %q, %v", i, round, buf[:n], err)
			}
		}
	}
	for i := range ps {
		ps[i].cli.Close()
	}
}
