package icilk_test

import (
	"fmt"
	"time"

	"icilk"
	"icilk/internal/netsim"
)

// Fork-join parallelism: Spawn forks a child that may run in parallel
// with the caller's continuation; Sync joins all spawned children.
func ExampleRuntime_Run() {
	rt, _ := icilk.New(icilk.Config{Workers: 2})
	defer rt.Close()

	sum := rt.Run(func(t *icilk.Task) any {
		var left, right int
		t.Spawn(func(*icilk.Task) { left = 20 })
		right = 22
		t.Sync()
		return left + right
	})
	fmt.Println(sum)
	// Output: 42
}

// Futures escape lexical scope: create at one priority, consume at
// another. Level 0 is the highest priority.
func ExampleTask_FutCreate() {
	rt, _ := icilk.New(icilk.Config{Workers: 2, Levels: 2})
	defer rt.Close()

	out := rt.Run(func(t *icilk.Task) any {
		urgent := t.FutCreate(0, func(*icilk.Task) any { return "first" })
		lazy := t.FutCreate(1, func(*icilk.Task) any { return "second" })
		return urgent.Get(t).(string) + "/" + lazy.Get(t).(string)
	})
	fmt.Println(out)
	// Output: first/second
}

// Typed futures restore compile-time types at the API boundary.
func ExampleFutCreateOf() {
	rt, _ := icilk.New(icilk.Config{Workers: 2})
	defer rt.Close()

	n := rt.Run(func(t *icilk.Task) any {
		f := icilk.FutCreateOf(t, 0, func(*icilk.Task) int { return 6 * 7 })
		return f.Get(t) // int, no assertion needed
	})
	fmt.Println(n)
	// Output: 42
}

// I/O futures: Read blocks the task (its deque suspends and the
// worker runs other work) until the connection is readable.
func ExampleRuntime_Read() {
	rt, _ := icilk.New(icilk.Config{Workers: 1})
	defer rt.Close()

	client, server := netsim.Pipe()
	go func() {
		time.Sleep(time.Millisecond)
		client.WriteString("hello from the network")
	}()

	msg := rt.Run(func(t *icilk.Task) any {
		var buf [64]byte
		n, _ := rt.Read(t, server, buf[:])
		return string(buf[:n])
	})
	fmt.Println(msg)
	// Output: hello from the network
}

// Task-aware locks suspend the task, not the worker, and hand off
// FIFO.
func ExampleRuntime_NewMutex() {
	rt, _ := icilk.New(icilk.Config{Workers: 2})
	defer rt.Close()

	m := rt.NewMutex()
	total := 0
	var futs []*icilk.Future
	for i := 0; i < 4; i++ {
		futs = append(futs, rt.Submit(0, func(t *icilk.Task) any {
			for j := 0; j < 100; j++ {
				m.Lock(t)
				total++
				m.Unlock()
			}
			return nil
		}))
	}
	for _, f := range futs {
		f.Wait()
	}
	fmt.Println(total)
	// Output: 400
}

// The inversion detector flags waits that violate the priority
// well-formedness condition the paper's guarantees assume.
func ExampleRuntime_Inversions() {
	rt, _ := icilk.New(icilk.Config{Workers: 2, Levels: 2})
	defer rt.Close()

	rt.Submit(0, func(t *icilk.Task) any {
		low := t.FutCreate(1, func(*icilk.Task) any { return nil })
		low.Get(t) // high-priority task waits on low-priority work
		return nil
	}).Wait()
	fmt.Println(rt.Inversions())
	// Output: 1
}
