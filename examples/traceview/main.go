// Traceview demonstrates the scheduler event trace: it runs a bursty
// two-priority workload under Prompt I-Cilk with tracing enabled and
// prints the event counts plus a short timeline excerpt around a
// priority preemption — steal, mug, abandon, suspend, resume, sleep,
// and wake events as the scheduler made them.
//
//	go run ./examples/traceview
package main

import (
	"fmt"
	"time"

	"icilk"
	"icilk/internal/trace"
)

func main() {
	rt, err := icilk.New(icilk.Config{Workers: 2, Levels: 2, TraceCapacity: 65536})
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	// Low-priority background crunching.
	stop := make(chan struct{})
	var background []*icilk.Future
	for i := 0; i < 3; i++ {
		background = append(background, rt.Submit(1, func(t *icilk.Task) any {
			for {
				select {
				case <-stop:
					return nil
				default:
					t.Yield()
				}
			}
		}))
	}

	// Interactive high-priority requests with I/O waits.
	for i := 0; i < 20; i++ {
		rt.Submit(0, func(t *icilk.Task) any {
			rt.Sleep(t, 500*time.Microsecond) // an "I/O" wait
			return nil
		}).Wait()
		time.Sleep(time.Millisecond)
	}
	close(stop)
	for _, f := range background {
		f.Wait()
	}

	tr := rt.Trace()
	fmt.Println("event counts:")
	for _, k := range []trace.Kind{
		trace.Steal, trace.Mug, trace.Abandon, trace.Suspend,
		trace.Resume, trace.Enqueue, trace.Drop, trace.Sleep, trace.Wake,
	} {
		fmt.Printf("  %-8v %6d\n", k, tr.Count(k))
	}

	// Print the timeline around the first abandonment: the low-priority
	// worker leaving its deque for the high-priority arrival.
	events := tr.Snapshot()
	firstAbandon := -1
	for i, e := range events {
		if e.Kind == trace.Abandon {
			firstAbandon = i
			break
		}
	}
	if firstAbandon < 0 {
		fmt.Println("\n(no abandonment captured — try more background tasks)")
		return
	}
	lo := firstAbandon - 4
	if lo < 0 {
		lo = 0
	}
	hi := firstAbandon + 6
	if hi > len(events) {
		hi = len(events)
	}
	fmt.Println("\ntimeline around the first priority preemption:")
	for _, e := range events[lo:hi] {
		who := fmt.Sprintf("worker %d", e.Worker)
		if e.Worker < 0 {
			who = "io-thread"
		}
		lvl := fmt.Sprintf("level %d", e.Level)
		if e.Level < 0 {
			lvl = "(idle)"
		}
		fmt.Printf("  %8.1fus  %-9s %-8v %s\n",
			float64(e.TS)/1e3, who, e.Kind, lvl)
	}
	fmt.Printf("\ntotal events: %d (ring keeps the most recent %d)\n", tr.Total(), 65536)
}
