// Quickstart: fork-join parallelism and futures on the icilk runtime.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"icilk"
)

// fib computes Fibonacci numbers with spawn/sync, the canonical
// fork-join example.
func fib(t *icilk.Task, n int) int {
	if n < 10 {
		return fibSeq(n)
	}
	var a int
	t.Spawn(func(ct *icilk.Task) { a = fib(ct, n-1) })
	b := fib(t, n-2)
	t.Sync()
	return a + b
}

func fibSeq(n int) int {
	if n < 2 {
		return n
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

func main() {
	rt, err := icilk.New(icilk.Config{Workers: 4, Levels: 2})
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	// Fork-join: Run blocks until the root task returns.
	start := time.Now()
	result := rt.Run(func(t *icilk.Task) any { return fib(t, 28) }).(int)
	fmt.Printf("fib(28) = %d  (%v)\n", result, time.Since(start))

	// Futures: fut-create starts a computation whose handle can
	// outlive the lexical scope; Get suspends only the waiting task,
	// never a worker.
	sum := rt.Run(func(t *icilk.Task) any {
		futs := make([]*icilk.Future, 8)
		for i := range futs {
			i := i
			futs[i] = t.FutCreate(0, func(ct *icilk.Task) any {
				return fib(ct, 20+i%3)
			})
		}
		total := 0
		for _, f := range futs {
			total += f.Get(t).(int)
		}
		return total
	}).(int)
	fmt.Printf("sum of 8 future fibs = %d\n", sum)

	// I/O futures: Sleep parks the task on a timer-completed future;
	// the single worker below stays busy with other tasks meanwhile.
	done := make(chan struct{})
	rt.Submit(1, func(t *icilk.Task) any {
		rt.Sleep(t, 10*time.Millisecond)
		fmt.Println("low-priority task woke from I/O wait")
		close(done)
		return nil
	})
	hi := rt.Submit(0, func(t *icilk.Task) any {
		return "high-priority work ran while the other task slept"
	})
	fmt.Println(hi.Wait().(string))
	<-done
}
