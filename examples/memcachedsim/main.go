// Memcachedsim runs the paper's headline experiment in miniature: the
// Memcached port under the pthread/event-loop baseline and under each
// I-Cilk scheduler, at the same load, printing the tail-latency
// comparison. It is the quickest way to see the paper's Figure 1
// story on your own machine.
//
//	go run ./examples/memcachedsim
package main

import (
	"fmt"
	"time"

	"icilk"
	"icilk/internal/bench"
)

func main() {
	opt := bench.MemcachedOptions{
		Workers:     4,
		Connections: 48,
		RPS:         800,
		Duration:    1200 * time.Millisecond,
	}
	fmt.Printf("memcached: %d connections, %.0f RPS, %v window\n",
		opt.Connections, opt.RPS, opt.Duration)
	fmt.Printf("%-18s %10s %10s %10s\n", "server", "p50", "p95", "p99")

	pt, err := bench.RunMemcachedPthread(opt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-18s %10v %10v %10v\n", "pthread+libevent",
		pt.Latency.Median().Round(time.Microsecond),
		pt.Latency.Percentile(95).Round(time.Microsecond),
		pt.Latency.Percentile(99).Round(time.Microsecond))

	for _, kind := range []icilk.Scheduler{
		icilk.Prompt, icilk.AdaptiveGreedy, icilk.AdaptiveAging, icilk.Adaptive,
	} {
		r, err := bench.RunMemcachedICilk(kind, bench.DefaultSweep()[1], opt)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-18s %10v %10v %10v\n", kind,
			r.Latency.Median().Round(time.Microsecond),
			r.Latency.Percentile(95).Round(time.Microsecond),
			r.Latency.Percentile(99).Round(time.Microsecond))
	}
	fmt.Println("\nexpected shape (paper Figs 1 & 3): prompt / adaptive-greedy /")
	fmt.Println("adaptive+aging track the pthread baseline; plain adaptive is far worse —")
	fmt.Println("the aging heuristic is the crucial difference.")
}
