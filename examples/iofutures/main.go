// Iofutures shows the I/O-future programming model that made the
// paper's Memcached port tractable: a tiny line-oriented key-value
// server whose per-connection handler is straight-line synchronous
// code — no event loop, no callback state machine — while the
// runtime multiplexes all connections over two workers.
//
//	go run ./examples/iofutures
package main

import (
	"fmt"
	"strings"
	"sync"

	"icilk"
	"icilk/internal/netsim"
)

func main() {
	rt, err := icilk.New(icilk.Config{Workers: 2, Levels: 1})
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	ln := netsim.NewListener()

	// The whole server: accept, then one future routine per
	// connection. Reads suspend on I/O futures, so a handler blocked
	// on a slow client costs nothing.
	var store sync.Map
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			rt.Submit(0, func(t *icilk.Task) any {
				defer conn.Close()
				lr := rt.NewLineReader(conn)
				for {
					line, err := lr.ReadLine(t)
					if err != nil {
						return nil // client hung up
					}
					fields := strings.Fields(line)
					switch {
					case len(fields) == 3 && fields[0] == "put":
						store.Store(fields[1], fields[2])
						conn.WriteString("ok\n")
					case len(fields) == 2 && fields[0] == "get":
						if v, ok := store.Load(fields[1]); ok {
							conn.WriteString(v.(string) + "\n")
						} else {
							conn.WriteString("(nil)\n")
						}
					default:
						conn.WriteString("err: use 'put k v' or 'get k'\n")
					}
				}
			})
		}
	}()

	// Three concurrent clients, interleaving requests.
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := ln.Dial()
			if err != nil {
				panic(err)
			}
			defer conn.Close()
			send := func(req string) string {
				conn.WriteString(req + "\n")
				var buf [128]byte
				n, err := conn.Read(buf[:])
				if err != nil {
					panic(err)
				}
				return strings.TrimSpace(string(buf[:n]))
			}
			key := fmt.Sprintf("key%d", c)
			fmt.Printf("client %d: put -> %s\n", c, send("put "+key+" value"+key))
			fmt.Printf("client %d: get -> %s\n", c, send("get "+key))
			fmt.Printf("client %d: missing -> %s\n", c, send("get nope"))
		}()
	}
	wg.Wait()
	ln.Close()
}
