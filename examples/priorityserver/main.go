// Priorityserver demonstrates promptness: an interactive server whose
// latency-critical pings (priority 0) stay fast while bulk analytics
// jobs (priority 1) saturate every worker. Run it twice to compare —
// under the Prompt scheduler ping latency stays low because workers
// abandon bulk work the moment a ping arrives; under plain Adaptive
// I-Cilk pings wait out the allocator quantum.
//
// It then demonstrates overload protection: every request gets a
// deadline (late ones are cancelled at their next scheduling point),
// and an admission controller sheds excess bulk work at the door, so
// the demo ends with a good/late/shed breakdown.
//
//	go run ./examples/priorityserver            # Prompt I-Cilk
//	go run ./examples/priorityserver -adaptive  # Adaptive I-Cilk
package main

import (
	"errors"
	"flag"
	"fmt"
	"time"

	"icilk"
	"icilk/internal/stats"
)

func main() {
	adaptive := flag.Bool("adaptive", false, "use the Adaptive I-Cilk scheduler")
	flag.Parse()

	sched := icilk.Prompt
	if *adaptive {
		sched = icilk.Adaptive
	}
	rt, err := icilk.New(icilk.Config{
		Workers:   2,
		Levels:    2,
		Scheduler: sched,
		// Admission control for part two: at most 8 in-flight requests
		// per level, 5ms deadline on each. rt.Submit bypasses the
		// controller, so part one is unaffected.
		Admission: &icilk.AdmissionConfig{
			Policy:   icilk.ShedPriorityDrop,
			QueueCap: 8,
			Timeout:  5 * time.Millisecond,
		},
	})
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	fmt.Printf("scheduler: %v\n", sched)

	// Bulk analytics: keep both workers busy with low-priority work
	// that hits scheduling points regularly (as compiled task-parallel
	// code would at every spawn).
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		rt.Submit(1, func(t *icilk.Task) any {
			for {
				select {
				case <-stop:
					return nil
				default:
				}
				crunch(t)
			}
		})
	}

	// Interactive pings at priority 0.
	lat := stats.NewRecorder(128)
	for i := 0; i < 100; i++ {
		t0 := time.Now()
		rt.Submit(0, func(*icilk.Task) any { return nil }).Wait()
		lat.Record(time.Since(t0))
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)

	s := lat.Summarize()
	fmt.Printf("ping latency over %d requests, with both workers saturated by bulk jobs:\n", s.Count)
	fmt.Printf("  p50=%v  p95=%v  p99=%v  max=%v\n", s.Median, s.P95, s.P99, s.Max)
	fmt.Println("(compare -adaptive: reaction is bounded by the allocator quantum instead of")
	fmt.Println(" the next scheduling point, so the tail is roughly a quantum long)")

	// Part two: overload protection. Flood the bulk level far past its
	// admission capacity — the excess is rejected in microseconds with
	// icilk.ErrShed, never allocating a task context — then issue
	// deadline-bounded requests and count how each one ends.
	var good, late, shed int
	var shedErr error
	adm := rt.Admission()
	var admitted []*icilk.Future
	for i := 0; i < 64; i++ {
		f, err := adm.Submit(1, func(t *icilk.Task) any { crunch(t); return nil })
		if err != nil {
			shed++
			shedErr = err
			continue
		}
		admitted = append(admitted, f)
	}
	for i := 0; i < 20; i++ {
		f, err := adm.Submit(0, func(*icilk.Task) any { return nil })
		if err != nil {
			shed++
			continue
		}
		f.Wait()
		if f.Err() != nil {
			late++
		} else {
			good++
		}
	}
	// One request that cannot meet its deadline: SubmitWithDeadline
	// attaches a 1ms budget, cancellation unwinds it at a scheduling
	// point, and Future.Err reports why.
	slow := rt.SubmitWithDeadline(0, time.Millisecond, func(t *icilk.Task) any {
		for {
			crunch(t) // cancelled at a Yield once the deadline passes
		}
	})
	slow.Wait()
	if err := slow.Err(); err != nil {
		late++
		fmt.Printf("\nslow request cancelled: %v\n", err)
	}
	for _, f := range admitted {
		f.Wait()
		if f.Err() != nil {
			late++
		} else {
			good++
		}
	}
	fmt.Printf("overload protection (cap 8/level, 5ms deadline): good=%d late=%d shed=%d\n",
		good, late, shed)
	if shedErr != nil {
		fmt.Printf("a shed request reports: %v (errors.Is ErrShed: %v)\n",
			shedErr, errors.Is(shedErr, icilk.ErrShed))
	}
}

// crunch is ~50µs of work with a scheduling point at each call.
func crunch(t *icilk.Task) {
	x := 1.0
	for i := 0; i < 10000; i++ {
		x += 1.0 / x
	}
	t.Yield()
	_ = x
}
