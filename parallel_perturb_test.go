//go:build icilk_debug

package icilk

import (
	"fmt"
	"sync/atomic"
	"testing"

	"icilk/internal/invariant/perturb"
)

// TestPerturbDataParallel runs For, Reduce, and Scan under every
// scheduler policy with seeded perturbation at all scheduling points —
// most importantly the new LoopSplit site between a loop frame's spawn
// and its continuation, the window in which a thief takes the right
// piece of a split. The invariant build's armed assertions (deque
// transitions, token discipline, join-counter bounds) do the deep
// checking; the test itself verifies exactly-once coverage and
// order-correct combining, which is what a lost or doubled steal of a
// loop frame would corrupt.
func TestPerturbDataParallel(t *testing.T) {
	const n = 2000
	for _, pol := range Schedulers() {
		for _, seed := range perturb.Seeds([]uint64{0x1, 0xdecade, 0xfeedbeef}) {
			t.Run(fmt.Sprintf("%v/seed=%#x", pol, seed), func(t *testing.T) {
				rt := newRT(t, Config{Workers: 4, Levels: 1, Scheduler: pol})
				perturb.Enable(seed)
				defer perturb.Disable()

				t.Run("for", func(t *testing.T) {
					counts := make([]atomic.Int32, n)
					rt.Run(func(task *Task) any {
						For(task, 0, n, 16, func(i int) { counts[i].Add(1) })
						return nil
					})
					for i := range counts {
						if c := counts[i].Load(); c != 1 {
							t.Fatalf("index %d ran %d times (seed %#x)", i, c, perturb.Seed())
						}
					}
				})

				t.Run("reduce", func(t *testing.T) {
					got := rt.Run(func(task *Task) any {
						return Reduce(task, 1, n+1, 16, 0,
							func(i int) int { return i },
							func(a, b int) int { return a + b })
					}).(int)
					if want := n * (n + 1) / 2; got != want {
						t.Fatalf("sum = %d, want %d (seed %#x)", got, want, perturb.Seed())
					}
				})

				t.Run("scan", func(t *testing.T) {
					in := make([]int, n)
					for i := range in {
						in[i] = i + 1
					}
					var out []int
					var total int
					rt.Run(func(task *Task) any {
						out, total = Scan(task, in, 32, 0, func(a, b int) int { return a + b })
						return nil
					})
					acc := 0
					for i := range in {
						if out[i] != acc {
							t.Fatalf("out[%d] = %d, want %d (seed %#x)", i, out[i], acc, perturb.Seed())
						}
						acc += in[i]
					}
					if total != acc {
						t.Fatalf("total = %d, want %d (seed %#x)", total, acc, perturb.Seed())
					}
				})
			})
		}
	}
}
