package icilk

import (
	"icilk/internal/admin"
	"icilk/internal/metrics"
	"icilk/internal/sched"
	"icilk/internal/trace"
)

// MetricsRegistry is the runtime's metric registry: atomic counters,
// gauges, and latency histograms with Prometheus text exposition.
// Every runtime owns one (see Runtime.Metrics); applications register
// their own series into it so one /metrics scrape covers scheduler
// and application together.
type MetricsRegistry = metrics.Registry

// MetricLabel is one label pair on a metric series.
type MetricLabel = metrics.Label

// SchedSnapshot is the point-in-time scheduler view served by the
// admin endpoint /debug/sched.
type SchedSnapshot = sched.Snapshot

// AdminServer is the runtime introspection HTTP server: GET /metrics
// (Prometheus text), GET /debug/sched (JSON scheduler snapshot), and
// GET /debug/trace (recent scheduler events).
type AdminServer = admin.Server

// Metrics returns the runtime's metric registry. The scheduler's
// counters (steals, muggings, abandonments, waste clocks, per-level
// deque gauges) and the I/O pool's queue gauges are pre-registered;
// applications add their own request counters and latency histograms.
func (r *Runtime) Metrics() *MetricsRegistry { return r.metrics }

// Snapshot captures the scheduler's observable state: bitfield,
// per-level pool depths (with per-shard breakdown for the sharded
// centralized pools), per-worker levels and waste clocks.
func (r *Runtime) Snapshot() SchedSnapshot { return r.rt.Snapshot() }

// ShardStats reports the centralized pool's shard count per level and
// the MultiQueue relaxed-selection counters (sampled-shard misses and
// exactness-preserving full sweeps). Shards is 0 for the Adaptive
// per-worker-pool schedulers.
func (r *Runtime) ShardStats() (shards int, sampleMisses, sweeps int64) {
	return r.rt.ShardStats()
}

// NewAdminServer creates an unbound admin server with no runtime
// attached. Most callers want ServeAdmin instead; the two-step form
// exists for harnesses that re-point one admin server at a sequence
// of short-lived runtimes (see Runtime.AttachAdmin).
func NewAdminServer() *AdminServer { return admin.New() }

// Health is the runtime state served by the admin endpoint /readyz.
type Health = admin.Health

// Health reports the runtime's readiness: Ready while the runtime is
// open with its workers started; Degraded while admission control is
// shedding 100% of arrivals (sustained — see
// AdmissionConfig.DegradedAfter).
func (r *Runtime) Health() Health {
	h := Health{Ready: !r.closed.Load()}
	if !h.Ready {
		h.Detail = "runtime closed"
		return h
	}
	if r.adm != nil && r.adm.Degraded() {
		h.Degraded = true
		h.Detail = "admission control shedding all arrivals"
	}
	return h
}

// AttachAdmin points s's endpoints at this runtime (atomically; an
// admin server can be re-attached to a newer runtime at any time).
func (r *Runtime) AttachAdmin(s *AdminServer) {
	src := admin.Sources{
		Metrics: r.metrics,
		Sched:   func() any { return r.rt.Snapshot() },
		TraceEvents: func() ([]trace.Event, bool) {
			l := r.rt.Trace()
			return l.Snapshot(), l != nil
		},
		Health: r.Health,
	}
	if r.adm != nil && r.adm.Predictor() != nil {
		p := r.adm.Predictor()
		src.Predict = func() any { return p.Snapshot() }
	}
	s.SetSources(src)
}

// ServeAdmin starts an admin HTTP server bound to addr (host:port;
// use port 0 for an ephemeral port, then Addr() to discover it) and
// attaches this runtime to it. The runtime tracks the server:
// Runtime.Close shuts it down gracefully (http.Server.Shutdown —
// in-flight scrapes drain), so callers need not close it themselves,
// though closing it earlier is safe.
func (r *Runtime) ServeAdmin(addr string) (*AdminServer, error) {
	s := NewAdminServer()
	r.AttachAdmin(s)
	if err := s.Start(addr); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.admins = append(r.admins, s)
	r.mu.Unlock()
	return s, nil
}
