package icilk

import (
	"io"
	"sync/atomic"
	"testing"
	"time"

	"icilk/internal/netsim"
)

func newRT(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestRunSpawnSync(t *testing.T) {
	rt := newRT(t, Config{Workers: 3, Levels: 2})
	got := rt.Run(func(task *Task) any {
		var a, b int
		task.Spawn(func(*Task) { a = 20 })
		b = 22
		task.Sync()
		return a + b
	}).(int)
	if got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestSubmitAtEachLevel(t *testing.T) {
	rt := newRT(t, Config{Workers: 2, Levels: 4})
	for l := 0; l < 4; l++ {
		l := l
		if got := rt.Submit(l, func(task *Task) any { return task.Level() }).Wait().(int); got != l {
			t.Fatalf("level = %d, want %d", got, l)
		}
	}
}

func TestSleepParksWithoutBlockingWorker(t *testing.T) {
	rt := newRT(t, Config{Workers: 1, Levels: 1})
	// One worker: if Sleep held the worker, the second future could
	// not run and the first would never finish.
	var other atomic.Bool
	f := rt.Submit(0, func(task *Task) any {
		rt.Sleep(task, 20*time.Millisecond)
		return other.Load()
	})
	rt.Submit(0, func(*Task) any { other.Store(true); return nil })
	if !f.Wait().(bool) {
		t.Fatal("second future did not run while first slept")
	}
}

func TestReadSuspendsAndResumes(t *testing.T) {
	rt := newRT(t, Config{Workers: 1, Levels: 1})
	cli, srv := netsim.Pipe()
	f := rt.Submit(0, func(task *Task) any {
		var buf [16]byte
		n, err := rt.Read(task, srv, buf[:])
		if err != nil {
			return err
		}
		return string(buf[:n])
	})
	time.Sleep(2 * time.Millisecond) // ensure the task is suspended
	cli.WriteString("wake up")
	if got := f.Wait().(string); got != "wake up" {
		t.Fatalf("got %q", got)
	}
}

func TestReadEOF(t *testing.T) {
	rt := newRT(t, Config{Workers: 1, Levels: 1})
	cli, srv := netsim.Pipe()
	cli.Close()
	f := rt.Submit(0, func(task *Task) any {
		var buf [4]byte
		_, err := rt.Read(task, srv, buf[:])
		return err
	})
	if err := f.Wait().(error); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestReadFull(t *testing.T) {
	rt := newRT(t, Config{Workers: 1, Levels: 1})
	cli, srv := netsim.Pipe()
	go func() {
		// Dribble the payload in three writes.
		cli.WriteString("ab")
		time.Sleep(time.Millisecond)
		cli.WriteString("cd")
		time.Sleep(time.Millisecond)
		cli.WriteString("ef")
	}()
	f := rt.Submit(0, func(task *Task) any {
		buf := make([]byte, 6)
		if _, err := rt.ReadFull(task, srv, buf); err != nil {
			return err
		}
		return string(buf)
	})
	if got := f.Wait().(string); got != "abcdef" {
		t.Fatalf("got %q", got)
	}
}

func TestReadFullUnexpectedEOF(t *testing.T) {
	rt := newRT(t, Config{Workers: 1, Levels: 1})
	cli, srv := netsim.Pipe()
	cli.WriteString("abc")
	cli.Close()
	f := rt.Submit(0, func(task *Task) any {
		buf := make([]byte, 6)
		_, err := rt.ReadFull(task, srv, buf)
		return err
	})
	if err := f.Wait().(error); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestLineReaderLinesAndBlocks(t *testing.T) {
	rt := newRT(t, Config{Workers: 1, Levels: 1})
	cli, srv := netsim.Pipe()
	go func() {
		cli.WriteString("first line\r\n")
		cli.WriteString("second\n")
		cli.WriteString("set x 0 0 4\r\n")
		cli.WriteString("data\r\n")
	}()
	f := rt.Submit(0, func(task *Task) any {
		lr := rt.NewLineReader(srv)
		l1, err := lr.ReadLine(task)
		if err != nil {
			return err
		}
		l2, err := lr.ReadLine(task)
		if err != nil {
			return err
		}
		l3, err := lr.ReadLine(task)
		if err != nil {
			return err
		}
		block, err := lr.ReadBlock(task, 4)
		if err != nil {
			return err
		}
		return l1 + "|" + l2 + "|" + l3 + "|" + string(block)
	})
	want := "first line|second|set x 0 0 4|data"
	if got := f.Wait().(string); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestLineReaderBuffered(t *testing.T) {
	rt := newRT(t, Config{Workers: 1, Levels: 1})
	cli, srv := netsim.Pipe()
	cli.WriteString("a\r\nb\r\n")
	f := rt.Submit(0, func(task *Task) any {
		lr := rt.NewLineReader(srv)
		lr.ReadLine(task)
		return lr.Buffered()
	})
	if !f.Wait().(bool) {
		t.Fatal("Buffered() = false with a pipelined line waiting")
	}
}

func TestCompleteIOPreservesFIFO(t *testing.T) {
	rt := newRT(t, Config{Workers: 2, Levels: 1, IOThreads: 1})
	const n = 20
	var order []int
	done := make(chan struct{})
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	futs := make([]*Future, n)
	for i := range futs {
		futs[i] = rt.NewIOFuture()
	}
	// Waiter tasks record completion observation order.
	var seen atomic.Int64
	for i := range futs {
		i := i
		rt.Submit(0, func(task *Task) any {
			futs[i].Get(task)
			<-mu
			order = append(order, i)
			mu <- struct{}{}
			if seen.Add(1) == n {
				close(done)
			}
			return nil
		})
	}
	time.Sleep(5 * time.Millisecond)
	for i := range futs {
		rt.CompleteIO(futs[i], nil)
	}
	<-done
	// With 1 I/O thread, completions (and hence deque resumptions)
	// happen in submission order; the scheduler's FIFO pool should
	// preserve that aging order approximately. Verify exact FIFO of
	// *completion* by checking all futures completed.
	<-mu
	if len(order) != n {
		t.Fatalf("observed %d completions", len(order))
	}
}

func TestWasteAndDequeAccessors(t *testing.T) {
	rt := newRT(t, Config{Workers: 2, Levels: 2})
	rt.Run(func(task *Task) any {
		task.Spawn(func(*Task) {})
		task.Sync()
		return nil
	})
	if rt.Workers() != 2 || rt.Levels() != 2 {
		t.Fatal("accessor mismatch")
	}
	if rt.WasteReport().Work <= 0 {
		t.Fatal("no work recorded")
	}
	rt.ResetWaste()
	if rt.WasteReport().Work != 0 {
		t.Fatal("reset failed")
	}
	if rt.NonEmptyDeques(0) != 0 {
		t.Fatal("deques linger after quiescence")
	}
	if rt.Inflight() != 0 {
		t.Fatal("inflight after drain")
	}
}

func TestAllSchedulersViaPublicAPI(t *testing.T) {
	for _, pol := range []Scheduler{Prompt, Adaptive, AdaptiveAging, AdaptiveGreedy} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			rt := newRT(t, Config{Workers: 2, Levels: 3, Scheduler: pol,
				Adaptive: AdaptiveParams{Quantum: time.Millisecond, Delta: 0.5, Rho: 2}})
			cli, srv := netsim.Pipe()
			go func() {
				time.Sleep(time.Millisecond)
				cli.WriteString("ping\r\n")
			}()
			f := rt.Submit(1, func(task *Task) any {
				lr := rt.NewLineReader(srv)
				line, err := lr.ReadLine(task)
				if err != nil {
					return err
				}
				hi := task.FutCreate(0, func(*Task) any { return "hi" })
				return line + "-" + hi.Get(task).(string)
			})
			if got := f.Wait().(string); got != "ping-hi" {
				t.Fatalf("got %q", got)
			}
		})
	}
}
