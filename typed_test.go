package icilk

import "testing"

func TestFutCreateOfTyped(t *testing.T) {
	rt := newRT(t, Config{Workers: 2, Levels: 2})
	got := rt.Run(func(task *Task) any {
		f := FutCreateOf(task, 0, func(*Task) int { return 21 })
		g := FutCreateOf(task, 1, func(ct *Task) string { return "x" })
		return f.Get(task)*2 + len(g.Get(task))
	}).(int)
	if got != 43 {
		t.Fatalf("got %d", got)
	}
}

func TestSubmitOfTyped(t *testing.T) {
	rt := newRT(t, Config{Workers: 2, Levels: 1})
	f := SubmitOf(rt, 0, func(*Task) []int { return []int{1, 2, 3} })
	if got := f.Wait(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	if !f.Done() {
		t.Fatal("not done after Wait")
	}
	if v, ok := f.TryGet(); !ok || v[0] != 1 {
		t.Fatalf("TryGet = %v, %v", v, ok)
	}
	if f.Untyped() == nil {
		t.Fatal("Untyped returned nil")
	}
}

func TestTypedTryGetIncomplete(t *testing.T) {
	rt := newRT(t, Config{Workers: 1, Levels: 1})
	gate := rt.NewIOFuture()
	f := SubmitOf(rt, 0, func(task *Task) int {
		gate.Get(task)
		return 5
	})
	if v, ok := f.TryGet(); ok || v != 0 {
		t.Fatalf("TryGet on incomplete = %v, %v (want zero value, false)", v, ok)
	}
	gate.Complete(nil)
	if f.Wait() != 5 {
		t.Fatal("wrong value")
	}
}

func TestPublicMutexAndInversions(t *testing.T) {
	rt := newRT(t, Config{Workers: 2, Levels: 2})
	m := rt.NewMutex()
	c := rt.NewCond(m)
	fired := 0
	rt.OnInversion(func() { fired++ })

	done := rt.Submit(0, func(task *Task) any {
		m.Lock(task)
		defer m.Unlock()
		// Inverted get: level-0 task waits on a level-1 future.
		f := task.FutCreate(1, func(*Task) any { return nil })
		f.Get(task)
		return nil
	})
	done.Wait()
	if rt.Inversions() != 1 || fired != 1 {
		t.Fatalf("inversions = %d, callback fired %d", rt.Inversions(), fired)
	}
	_ = c
}
