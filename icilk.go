// Package icilk is the public API of this reproduction of "An
// Efficient Scheduler for Task-Parallel Interactive Applications"
// (Singer, Agrawal, Lee — SPAA 2023): a priority-oriented
// task-parallel runtime for interactive applications, providing
// fork-join parallelism (Spawn/Sync), futures (FutCreate/Get), I/O
// futures with a synchronous interface, and four interchangeable
// schedulers — Prompt I-Cilk (the paper's contribution), Adaptive
// I-Cilk (the prior state of the art), and the two hybrid variants the
// paper evaluates (Adaptive plus aging, Adaptive Greedy).
//
// # Quick start
//
//	rt, _ := icilk.New(icilk.Config{Workers: 4, Levels: 2})
//	defer rt.Close()
//	sum := rt.Run(func(t *icilk.Task) any {
//	    var a, b int
//	    t.Spawn(func(ct *icilk.Task) { a = work(ct) })
//	    b = work(t)
//	    t.Sync()
//	    return a + b
//	}).(int)
//
// Priority level 0 is the highest. Tasks at lower levels are abandoned
// promptly (under the Prompt scheduler) whenever higher-priority work
// appears.
package icilk

import (
	"time"

	"icilk/internal/iopool"
	"icilk/internal/metrics"
	"icilk/internal/sched"
	"icilk/internal/stats"
	"icilk/internal/trace"
)

// Task is the per-task context passed to every task function; it
// carries the Spawn/Sync/FutCreate operations. See the sched package
// for semantics.
type Task = sched.Task

// Future is a handle to an asynchronously computed value.
type Future = sched.Future

// Scheduler selects the scheduling policy.
type Scheduler = sched.PolicyKind

// Scheduler kinds.
const (
	// Prompt is Prompt I-Cilk: centralized per-level FIFO deque pools
	// with a mugging queue, frequent bitfield checks, sleep on idle.
	Prompt = sched.Prompt
	// Adaptive is Adaptive I-Cilk: two-level scheduling with
	// randomized work stealing over per-worker deque pools.
	Adaptive = sched.Adaptive
	// AdaptiveAging adds per-worker resumption-order queues to
	// Adaptive.
	AdaptiveAging = sched.AdaptiveAging
	// AdaptiveGreedy pairs the Adaptive top level with Prompt's
	// centralized bottom level.
	AdaptiveGreedy = sched.AdaptiveGreedy
)

// AdaptiveParams are the tunables of the Adaptive variants' top-level
// allocator (the paper sweeps these per benchmark).
type AdaptiveParams = sched.AdaptiveParams

// Config configures a Runtime.
type Config struct {
	// Workers is the number of scheduler workers. Default 4.
	Workers int
	// IOThreads is the number of I/O handling threads. Default 4,
	// matching the paper's setup.
	IOThreads int
	// Levels is the number of priority levels (level 0 highest),
	// 1..64. Default 2.
	Levels int
	// Scheduler selects the policy. Default Prompt.
	Scheduler Scheduler
	// Adaptive parameterizes the Adaptive variants.
	Adaptive AdaptiveParams
	// DisableMuggingQueue is a Prompt ablation: abandoned deques are
	// enqueued at the regular queue's tail (de-aged).
	DisableMuggingQueue bool
	// TraceCapacity, if positive, enables the scheduler event trace
	// (see Runtime.Trace) with a ring of that many events.
	TraceCapacity int
	// IOQueueCapacity bounds the I/O completion queue (submitters
	// block beyond it). Default 4096, the paper-era hard-coded value.
	IOQueueCapacity int
	// DisableRecycling turns off the scheduler's task-context and
	// deque recycling, so every spawn/submit allocates fresh — the
	// debugging escape hatch (one goroutine per task for its whole
	// life). ICILK_NORECYCLE=1 in the environment has the same effect.
	DisableRecycling bool
	// RecycleCap bounds how many finished task contexts stay parked
	// for reuse (idle-memory bound). Default 256.
	RecycleCap int
}

// Runtime is a running scheduler instance plus its I/O subsystem.
type Runtime struct {
	rt      *sched.Runtime
	io      *iopool.Pool
	metrics *metrics.Registry
}

// New creates and starts a runtime.
func New(cfg Config) (*Runtime, error) {
	rt, err := sched.New(sched.Config{
		Workers:             cfg.Workers,
		Levels:              cfg.Levels,
		Policy:              cfg.Scheduler,
		Adaptive:            cfg.Adaptive,
		DisableMuggingQueue: cfg.DisableMuggingQueue,
		TraceCapacity:       cfg.TraceCapacity,
		DisableRecycling:    cfg.DisableRecycling,
		RecycleCap:          cfg.RecycleCap,
	})
	if err != nil {
		return nil, err
	}
	io := cfg.IOThreads
	if io <= 0 {
		io = 4
	}
	pool := iopool.New(io, iopool.WithCapacity(cfg.IOQueueCapacity))
	reg := metrics.NewRegistry()
	rt.RegisterMetrics(reg)
	pool.RegisterMetrics(reg)
	return &Runtime{rt: rt, io: pool, metrics: reg}, nil
}

// Close shuts the runtime down. Drain outstanding work first (wait on
// your futures, or poll Inflight).
func (r *Runtime) Close() {
	r.io.Close()
	r.rt.Close()
}

// Run executes fn as a top-priority future routine and blocks until it
// returns.
func (r *Runtime) Run(fn func(*Task) any) any { return r.rt.Run(fn) }

// Submit injects fn as a new future routine at the given priority
// level from any goroutine.
func (r *Runtime) Submit(level int, fn func(*Task) any) *Future {
	return r.rt.SubmitFuture(level, fn)
}

// Inflight returns the number of submitted-but-unfinished futures.
func (r *Runtime) Inflight() int64 { return r.rt.Inflight() }

// NonEmptyDeques returns the instantaneous number of deques holding
// work at the given priority level (the quantity of the paper's
// Figure 2).
func (r *Runtime) NonEmptyDeques(level int) int64 { return r.rt.NonEmptyDeques(level) }

// WasteReport aggregates worker time accounting (work / overhead /
// waste plus steal, mug, failed-steal, sleep, and abandon counts).
func (r *Runtime) WasteReport() stats.WasteReport { return r.rt.WasteReport() }

// ResetWaste zeroes the waste accounting (call after warmup).
func (r *Runtime) ResetWaste() { r.rt.ResetWaste() }

// Workers returns the configured worker count.
func (r *Runtime) Workers() int { return r.rt.Workers() }

// Levels returns the configured number of priority levels.
func (r *Runtime) Levels() int { return r.rt.Levels() }

// Trace returns the scheduler event log, or nil unless
// Config.TraceCapacity was set. Events cover steals, muggings,
// abandonments, suspensions, resumptions, pool enqueues/drops, and
// idle sleeps/wakes.
func (r *Runtime) Trace() *trace.Log { return r.rt.Trace() }

// NewIOFuture creates a future to be completed by external code — the
// raw building block for custom I/O integrations.
func (r *Runtime) NewIOFuture() *Future { return r.rt.NewIOFuture() }

// CompleteIO fulfills an I/O future through the I/O handler threads:
// the completion is queued FIFO behind earlier completions and
// processed by a handler thread, exactly as the paper's I/O subsystem
// does. Use this (rather than calling f.Complete directly) so that
// resumption order reflects completion arrival order.
func (r *Runtime) CompleteIO(f *Future, v any) {
	r.io.Submit(func() { f.Complete(v) })
}

// Sleep parks the calling task for d without occupying a worker: the
// worker suspends the task's deque and runs other work; a timer
// completes the underlying I/O future through the handler threads.
func (r *Runtime) Sleep(t *Task, d time.Duration) {
	f := r.rt.NewIOFuture()
	time.AfterFunc(d, func() { r.CompleteIO(f, nil) })
	f.Get(t)
}
