// Package icilk is the public API of this reproduction of "An
// Efficient Scheduler for Task-Parallel Interactive Applications"
// (Singer, Agrawal, Lee — SPAA 2023): a priority-oriented
// task-parallel runtime for interactive applications, providing
// fork-join parallelism (Spawn/Sync), futures (FutCreate/Get), I/O
// futures with a synchronous interface, and four interchangeable
// schedulers — Prompt I-Cilk (the paper's contribution), Adaptive
// I-Cilk (the prior state of the art), and the two hybrid variants the
// paper evaluates (Adaptive plus aging, Adaptive Greedy).
//
// # Quick start
//
//	rt, _ := icilk.New(icilk.Config{Workers: 4, Levels: 2})
//	defer rt.Close()
//	sum := rt.Run(func(t *icilk.Task) any {
//	    var a, b int
//	    t.Spawn(func(ct *icilk.Task) { a = work(ct) })
//	    b = work(t)
//	    t.Sync()
//	    return a + b
//	}).(int)
//
// Priority level 0 is the highest. Tasks at lower levels are abandoned
// promptly (under the Prompt scheduler) whenever higher-priority work
// appears.
package icilk

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"icilk/internal/admin"
	"icilk/internal/admission"
	"icilk/internal/iopool"
	"icilk/internal/metrics"
	"icilk/internal/predict"
	"icilk/internal/sched"
	"icilk/internal/stats"
	"icilk/internal/trace"
)

// Task is the per-task context passed to every task function; it
// carries the Spawn/Sync/FutCreate operations. See the sched package
// for semantics.
type Task = sched.Task

// Future is a handle to an asynchronously computed value.
type Future = sched.Future

// Scheduler selects the scheduling policy.
type Scheduler = sched.PolicyKind

// Scheduler kinds.
const (
	// Prompt is Prompt I-Cilk: centralized per-level FIFO deque pools
	// with a mugging queue, frequent bitfield checks, sleep on idle.
	Prompt = sched.Prompt
	// Adaptive is Adaptive I-Cilk: two-level scheduling with
	// randomized work stealing over per-worker deque pools.
	Adaptive = sched.Adaptive
	// AdaptiveAging adds per-worker resumption-order queues to
	// Adaptive.
	AdaptiveAging = sched.AdaptiveAging
	// AdaptiveGreedy pairs the Adaptive top level with Prompt's
	// centralized bottom level.
	AdaptiveGreedy = sched.AdaptiveGreedy
)

// AdaptiveParams are the tunables of the Adaptive variants' top-level
// allocator (the paper sweeps these per benchmark).
type AdaptiveParams = sched.AdaptiveParams

// AdmissionConfig configures the admission-control subsystem (queue
// capacities, shedding policy, per-request deadlines). See the
// admission package for field semantics.
type AdmissionConfig = admission.Config

// AdmissionController is the admission gate in front of a runtime:
// Submit/Acquire admit or shed requests, Stats snapshots the
// counters. Obtain one via Config.Admission + Runtime.Admission.
type AdmissionController = admission.Controller

// AdmissionTicket is the occupancy charge of an inline request
// admitted with AdmissionController.Acquire.
type AdmissionTicket = admission.Ticket

// RequestClass identifies a request class for the ShedPredictive
// policy's service-time predictor: an application opcode plus a
// value-size bucket (see SizeBucket). Pass it via the controller's
// SubmitClass*/AcquireClass* variants; class-blind submissions train
// one synthetic class per priority level.
type RequestClass = predict.Class

// SizeBucket buckets a payload length logarithmically for
// RequestClass.Size (bucket i covers [2^(i-1), 2^i) bytes; 0 covers
// 0).
func SizeBucket(n int) uint8 { return predict.SizeBucket(n) }

// Admission shedding policies (AdmissionConfig.Policy).
const (
	// ShedPriorityDrop sheds low priority levels first as aggregate
	// occupancy grows (the default).
	ShedPriorityDrop = admission.PriorityDrop
	// ShedTailDrop rejects only when a request's own level is full.
	ShedTailDrop = admission.TailDrop
	// ShedCoDel sheds a level whose minimum queue sojourn stays above
	// the target for a full interval.
	ShedCoDel = admission.CoDel
	// ShedPredictive sheds on a predicted deadline miss: a TAGE-style
	// per-class service-time predictor (trained from measured service
	// times at completion) plus a predicted-backlog queue-wait model
	// (each admitted request charges its predicted service to its
	// level; wait ≈ backlog / workers), falling back to CoDel while
	// prediction confidence is low. See the admission and predict
	// packages.
	ShedPredictive = admission.Predictive
)

// ErrShed is the sentinel wrapped by every admission rejection; match
// with errors.Is.
var ErrShed = admission.ErrShed

// Config configures a Runtime.
type Config struct {
	// Workers is the number of scheduler workers. Default 4. For true
	// multi-core operation run with GOMAXPROCS >= Workers so workers
	// occupy parallel Ps; the centralized pools shard automatically
	// (see PoolShards).
	Workers int
	// PoolShards is the number of shards each priority level's
	// centralized pool is split into (Prompt and AdaptiveGreedy).
	// Zero derives it from Workers: 1 for a single worker, else the
	// next power of two >= max(Workers, 4); non-zero values round up
	// to a power of two. PoolShards=1 restores the paper's exact
	// centralized single-queue layout (the paper-fidelity and
	// ablation configuration). The promptness bitfield is global and
	// exact at every shard count.
	PoolShards int
	// IOThreads is the number of I/O handling threads. Default 4,
	// matching the paper's setup.
	IOThreads int
	// Levels is the number of priority levels (level 0 highest),
	// 1..64. Default 2.
	Levels int
	// Scheduler selects the policy. Default Prompt.
	Scheduler Scheduler
	// Adaptive parameterizes the Adaptive variants.
	Adaptive AdaptiveParams
	// DisableMuggingQueue is a Prompt ablation: abandoned deques are
	// enqueued at the regular queue's tail (de-aged).
	DisableMuggingQueue bool
	// TraceCapacity, if positive, enables the scheduler event trace
	// (see Runtime.Trace) with a ring of that many events.
	TraceCapacity int
	// IOQueueCapacity bounds the I/O completion handoff channel.
	// Submissions beyond it spill to an overflow list (Submit never
	// blocks; see the icilk_io_queue_* and icilk_io_spills_total
	// metrics for saturation). Default 4096, the paper-era
	// hard-coded value.
	IOQueueCapacity int
	// DisableRecycling turns off the scheduler's task-context and
	// deque recycling, so every spawn/submit allocates fresh — the
	// debugging escape hatch (one goroutine per task for its whole
	// life). ICILK_NORECYCLE=1 in the environment has the same effect.
	DisableRecycling bool
	// RecycleCap bounds how many finished task contexts stay parked
	// for reuse (idle-memory bound). Default 256.
	RecycleCap int
	// Admission, when non-nil, puts an admission controller in front
	// of the runtime (Runtime.Admission): bounded per-priority
	// queues, load shedding, and per-request deadlines. Its counters
	// are registered into the runtime's metric registry.
	Admission *AdmissionConfig
	// UrgentSlack enables the slack-aware tie-break within each
	// priority level for the centralized-pool schedulers: a request
	// whose deadline slack (after the level's estimated service time)
	// has shrunk below UrgentSlack jumps its level's FIFO. The
	// cross-level promptness machinery is untouched. Requires
	// deadlines (AdmissionConfig.Timeout or SubmitWithDeadline) to
	// have any effect; the per-level service estimate comes from the
	// admission controller when one is configured. Zero disables it.
	UrgentSlack time.Duration
}

// Runtime is a running scheduler instance plus its I/O subsystem.
type Runtime struct {
	rt      *sched.Runtime
	io      *iopool.Pool
	metrics *metrics.Registry
	adm     *admission.Controller
	closed  atomic.Bool

	mu     sync.Mutex
	admins []*admin.Server // servers created by ServeAdmin, shut down by Close
}

// New creates and starts a runtime.
func New(cfg Config) (*Runtime, error) {
	rt, err := sched.New(sched.Config{
		Workers:             cfg.Workers,
		PoolShards:          cfg.PoolShards,
		Levels:              cfg.Levels,
		Policy:              cfg.Scheduler,
		Adaptive:            cfg.Adaptive,
		DisableMuggingQueue: cfg.DisableMuggingQueue,
		TraceCapacity:       cfg.TraceCapacity,
		DisableRecycling:    cfg.DisableRecycling,
		RecycleCap:          cfg.RecycleCap,
		UrgentSlack:         cfg.UrgentSlack,
	})
	if err != nil {
		return nil, err
	}
	io := cfg.IOThreads
	if io <= 0 {
		io = 4
	}
	// Batched completions (shared-poller connections) drain inside a
	// wake-coalescing bracket: every resumed task sets its promptness
	// bit immediately, but the batch crosses the sleeper futex once.
	pool := iopool.New(io, iopool.WithCapacity(cfg.IOQueueCapacity),
		iopool.WithBatchWrap(rt.CoalesceWakes))
	reg := metrics.NewRegistry()
	rt.RegisterMetrics(reg)
	pool.RegisterMetrics(reg)
	r := &Runtime{rt: rt, io: pool, metrics: reg}
	if cfg.Admission != nil {
		adm, err := admission.NewController(rt, *cfg.Admission)
		if err != nil {
			pool.Close()
			rt.Close()
			return nil, err
		}
		adm.RegisterMetrics(reg)
		r.adm = adm
		// Feed the controller's observed per-level mean service times
		// to the scheduler's urgent-queue slack test.
		rt.SetServiceEstimate(adm.ServiceEstimate)
	}
	return r, nil
}

// Close shuts the runtime down: /readyz flips to 503 immediately, any
// admin servers created by ServeAdmin drain gracefully (in-flight
// scrapes finish, bounded at one second), then the I/O pool and the
// scheduler stop. Drain outstanding work first (wait on your futures,
// or poll Inflight).
func (r *Runtime) Close() {
	r.closed.Store(true)
	r.mu.Lock()
	admins := r.admins
	r.admins = nil
	r.mu.Unlock()
	for _, s := range admins {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		s.Shutdown(ctx)
		cancel()
	}
	r.io.Close()
	r.rt.Close()
}

// Admission returns the admission controller, or nil unless
// Config.Admission was set.
func (r *Runtime) Admission() *AdmissionController { return r.adm }

// Run executes fn as a top-priority future routine and blocks until it
// returns.
func (r *Runtime) Run(fn func(*Task) any) any { return r.rt.Run(fn) }

// Submit injects fn as a new future routine at the given priority
// level from any goroutine.
func (r *Runtime) Submit(level int, fn func(*Task) any) *Future {
	return r.rt.SubmitFuture(level, fn)
}

// SubmitWithDeadline is Submit with a per-request deadline: if fn's
// task tree has not completed within timeout it is cancelled, unwinds
// at its next scheduling points, and the future completes with
// Err() == context.DeadlineExceeded. Cooperative code can poll
// Task.Err to stop cleanly first. A non-positive timeout behaves like
// Submit.
func (r *Runtime) SubmitWithDeadline(level int, timeout time.Duration, fn func(*Task) any) *Future {
	return r.rt.SubmitFutureWithDeadline(level, timeout, fn)
}

// SubmitCtx is Submit bound to a context: when ctx is done (deadline
// or explicit cancel) fn's task tree is cancelled and the future
// completes with Err() == context.Cause(ctx). A nil or never-done
// context behaves like Submit.
func (r *Runtime) SubmitCtx(ctx context.Context, level int, fn func(*Task) any) *Future {
	return r.rt.SubmitFutureCtx(ctx, level, fn)
}

// Inflight returns the number of submitted-but-unfinished futures.
func (r *Runtime) Inflight() int64 { return r.rt.Inflight() }

// NonEmptyDeques returns the instantaneous number of deques holding
// work at the given priority level (the quantity of the paper's
// Figure 2).
func (r *Runtime) NonEmptyDeques(level int) int64 { return r.rt.NonEmptyDeques(level) }

// WasteReport aggregates worker time accounting (work / overhead /
// waste plus steal, mug, failed-steal, sleep, and abandon counts).
func (r *Runtime) WasteReport() stats.WasteReport { return r.rt.WasteReport() }

// ResetWaste zeroes the waste accounting (call after warmup).
func (r *Runtime) ResetWaste() { r.rt.ResetWaste() }

// Workers returns the configured worker count.
func (r *Runtime) Workers() int { return r.rt.Workers() }

// Levels returns the configured number of priority levels.
func (r *Runtime) Levels() int { return r.rt.Levels() }

// Trace returns the scheduler event log, or nil unless
// Config.TraceCapacity was set. Events cover steals, muggings,
// abandonments, suspensions, resumptions, pool enqueues/drops, and
// idle sleeps/wakes.
func (r *Runtime) Trace() *trace.Log { return r.rt.Trace() }

// NewIOFuture creates a future to be completed by external code — the
// raw building block for custom I/O integrations.
func (r *Runtime) NewIOFuture() *Future { return r.rt.NewIOFuture() }

// CompleteIO fulfills an I/O future through the I/O handler threads:
// the completion is queued FIFO behind earlier completions and
// processed by a handler thread, exactly as the paper's I/O subsystem
// does. Use this (rather than calling f.Complete directly) so that
// resumption order reflects completion arrival order.
func (r *Runtime) CompleteIO(f *Future, v any) {
	r.io.Submit(func() { f.Complete(v) })
}

// IOBatcher exposes the runtime's I/O pool as a batch submitter:
// external readiness sources (the netreal/netpoll shared pollers)
// hand a whole harvest of completion callbacks to the handler
// threads in one operation, and the pool drains each batch inside
// the scheduler's wake-coalescing bracket. The returned value
// implements netpoll.Batcher.
func (r *Runtime) IOBatcher() interface{ SubmitBatch(fns []func()) } { return r.io }

// Sleep parks the calling task for d without occupying a worker: the
// worker suspends the task's deque and runs other work; a timer
// completes the underlying I/O future through the handler threads.
func (r *Runtime) Sleep(t *Task, d time.Duration) {
	f := r.rt.NewIOFuture()
	time.AfterFunc(d, func() { r.CompleteIO(f, nil) })
	f.Get(t)
}
