#!/bin/sh
# Regenerates every figure's data into results/*.txt.
# Takes ~25 minutes on a single CPU; run nothing else meanwhile
# (concurrent work shows up as latency noise in every scheduler).
set -x
cd "$(dirname "$0")/.."
go run ./cmd/memcached-bench -fig 1 -rps 400,800,1200,1600 -dur 1500ms -reps 3 > results/fig1.txt 2>&1
go run ./cmd/memcached-bench -fig 2 -rps 1000,2000,3000,4500 -dur 1500ms -reps 3 -conns 256 > results/fig2.txt 2>&1
go run ./cmd/memcached-bench -fig 3 -rps 400,800,1200,1600 -dur 1500ms -reps 3 -quick > results/fig3.txt 2>&1
go run ./cmd/jobserver-bench -rps 30,40,50 -dur 3s > results/fig4.txt 2>&1
go run ./cmd/emailserver-bench -rps 250,500,800 -dur 2500ms > results/fig5.txt 2>&1
go run ./cmd/waste-bench -dur 3s > results/fig6.txt 2>&1
go run ./cmd/qos-search -server pthread -dur 1200ms > results/qos-pthread.txt 2>&1
go run ./cmd/qos-search -server prompt -dur 1200ms > results/qos-prompt.txt 2>&1
go run ./cmd/qos-search -server adaptive -dur 1200ms > results/qos-adaptive.txt 2>&1
echo ALL-DONE
