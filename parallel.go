package icilk

// Data-parallel helpers built on Spawn/Sync/Call — the convenience
// layer a Cilk programmer gets from cilk_for and parlaylib's
// parallel_for/par_do. Divide-and-conquer splitting (rather than one
// spawn per iteration) keeps the spawn tree logarithmic, so steal
// granularity adapts to however many workers show up, and every split
// point doubles as a promptness check.
//
// Two structural rules, both load-bearing (DESIGN.md, "Data-parallel
// cost model"):
//
//  1. Frame-scoped joins. Every recursive invocation runs in its own
//     task frame — the spawned half in its spawned child's frame, the
//     continued half in a called frame (Task.Call) — so a nested Sync
//     joins exactly that split's children. The seed's version recursed
//     into the left half on the caller's own Task, so deep syncs
//     joined right-sibling spawns of every enclosing split,
//     serializing the combine tree (kept as ReduceShared for the
//     regression test and the ablation benchmark).
//
//  2. Asymmetric split with a granularity cutoff. Ranges split at
//     lo + 9(n+1)/16 (parlaylib's rule): the worker dives into the
//     slightly larger left piece and the stealable continuation
//     carries the smaller right piece, biasing steals toward smaller
//     remainders. Splitting stops at the grain — the largest chunk
//     executed sequentially — which amortizes the measured ~1.4 µs
//     spawn+sync cost while keeping sequential runs (the window
//     between promptness checks) bounded.

import (
	"time"

	"icilk/internal/invariant"
	"icilk/internal/invariant/perturb"
)

// AutoGrain, passed as the grain argument, selects the auto-tuned
// grain mode: a leading prefix of the range runs sequentially in
// doubling blocks until one block's measured duration reaches the
// amortization target (grainTargetMult × the runtime's calibrated
// spawn+sync cost), and the remainder splits with the grain derived
// from that probe — parlaylib's get_granularity, calibrated against
// this runtime instead of a hard-coded tick. Bodies with wildly
// non-uniform per-iteration cost should pass an explicit grain.
const AutoGrain = -1

const (
	// defaultSpawnCostNS seeds the amortization target when the
	// calibration cannot run; it is the committed SpawnSync result from
	// BENCH_sched.json (1439 ns/op), rounded.
	defaultSpawnCostNS = 1400
	// grainTargetMult sets the auto-grain amortization target: a
	// sequential leaf should cost at least this many spawns' worth of
	// work, bounding spawn overhead near 1/grainTargetMult while
	// keeping leaves — the uninterruptible windows between promptness
	// checks — in the tens of microseconds.
	grainTargetMult = 8
	// defaultGrainDiv is parlaylib's static cutoff denominator:
	// default grain = n/(128·workers), i.e. ~128 chunks per worker for
	// load balance under non-uniform bodies.
	defaultGrainDiv = 128
	// minDefaultGrain floors the static default grain so a small range
	// on a many-worker runtime never degenerates to one-iteration
	// spawns (a 1.4 µs spawn per loop iteration is the pathology the
	// floor exists for). Explicit grains are honored as given.
	minDefaultGrain = 8
	// spawnCalReps is the spawn+sync round-trip sample count of the
	// lazy calibration; the clamps below keep a perturbed or preempted
	// calibration from producing an absurd target.
	spawnCalReps   = 64
	minSpawnCostNS = 100
	maxSpawnCostNS = 100_000
)

// spawnCostNS returns the runtime's calibrated spawn+sync cost,
// measuring it on first use: spawnCalReps empty spawn/sync round
// trips, timed inside a private called frame so the calibration never
// joins (or is joined by) the caller's own children. First writer
// wins, so every auto-grain loop on one runtime agrees on the target.
func spawnCostNS(t *Task) int64 {
	rt := t.Runtime()
	if ns := rt.SpawnCostNS(); ns > 0 {
		return ns
	}
	t.Call(func(ft *Task) {
		start := time.Now()
		for i := 0; i < spawnCalReps; i++ {
			ft.Spawn(func(*Task) {})
			ft.Sync()
		}
		ns := int64(time.Since(start)) / spawnCalReps
		if ns < minSpawnCostNS {
			ns = minSpawnCostNS
		}
		if ns > maxSpawnCostNS {
			ns = maxSpawnCostNS
		}
		rt.SetSpawnCostNS(ns)
	})
	return rt.SpawnCostNS()
}

// resolveGrain maps a non-negative grain argument to the split
// cutoff for a range of n iterations. Explicit grains are clamped to
// the range; the default (0) is the parlaylib cutoff n/(128·workers),
// floored at minDefaultGrain and capped at n, so the cutoff never
// exceeds the range yet never falls to one-iteration spawns.
func resolveGrain(t *Task, n, grain int) int {
	if grain <= 0 {
		grain = n / (defaultGrainDiv * t.Runtime().Workers())
		if grain < minDefaultGrain {
			grain = minDefaultGrain
		}
	}
	if grain > n {
		grain = n
	}
	return grain
}

// splitMid returns the asymmetric split point of [lo, hi): parlaylib's
// lo + 9(n+1)/16. For every n ≥ 2 it satisfies lo < mid < hi.
func splitMid(lo, hi int) int {
	return lo + 9*(hi-lo+1)/16
}

// For executes body(i) for every i in [lo, hi) exactly once, with
// fork-join parallelism. grain is the largest chunk executed
// sequentially: positive values are used as given (clamped to the
// range), 0 picks the parlaylib default cutoff, and AutoGrain
// calibrates against the measured spawn cost. The loop runs in its own
// called frame, so it never joins children the caller spawned before
// it.
func For(t *Task, lo, hi, grain int, body func(i int)) {
	if hi <= lo {
		return
	}
	if grain < 0 {
		done, g := forProbe(t, lo, hi, grainTargetMult*spawnCostNS(t), body)
		lo += done
		if lo >= hi {
			return
		}
		grain = g
	} else {
		grain = resolveGrain(t, hi-lo, grain)
	}
	lo2, hi2, g := lo, hi, grain
	t.Call(func(ft *Task) { forRec(ft, lo2, hi2, g, body) })
}

// forRec is one loop frame: it peels stealable left pieces off the
// front of the range (each in its own spawned frame) until the
// remainder fits the grain, runs that sequentially, and joins. The
// frame's Sync sees only the frame's own spawns — a called frame
// boundary above every forRec keeps enclosing loops and user spawns
// out of its join scope.
func forRec(t *Task, lo, hi, grain int, body func(i int)) {
	for hi-lo > grain {
		if invariant.Enabled {
			// The window between deciding to split and parking the
			// continuation is where a thief takes the right piece.
			perturb.At(perturb.LoopSplit)
		}
		mid := splitMid(lo, hi)
		lo2, mid2 := lo, mid
		t.Spawn(func(ct *Task) { forRec(ct, lo2, mid2, grain, body) })
		lo = mid
	}
	for i := lo; i < hi; i++ {
		body(i)
	}
	t.Sync()
}

// forProbe is the auto-grain calibration pass: it executes leading
// iterations sequentially in doubling blocks until one block's
// measured duration reaches targetNS (or the range is exhausted),
// then derives the grain for the remainder as max(probed count,
// remaining/(128·workers)) — parlaylib's get_granularity rule with
// the runtime-calibrated target. Every probed iteration counts as
// done: body runs exactly once per index.
func forProbe(t *Task, lo, hi int, targetNS int64, body func(i int)) (done, grain int) {
	n := hi - lo
	sz := 1
	for done < n {
		if sz > n-done {
			sz = n - done
		}
		start := time.Now()
		for i := lo + done; i < lo+done+sz; i++ {
			body(i)
		}
		done += sz
		sz *= 2
		if int64(time.Since(start)) >= targetNS {
			break
		}
	}
	return done, probeGrain(t, n-done, done)
}

// probeGrain combines the probe result with the static load-balance
// term: the probed count amortizes the spawn cost, the
// remaining/(128·workers) term keeps ~128 chunks per worker on large
// ranges, and the clamps keep the grain inside [1, remaining].
func probeGrain(t *Task, remaining, done int) int {
	g := remaining / (defaultGrainDiv * t.Runtime().Workers())
	if done > g {
		g = done
	}
	if g < 1 {
		g = 1
	}
	if remaining > 0 && g > remaining {
		g = remaining
	}
	return g
}

// Map applies fn to every element of in, in parallel, returning the
// results in order. grain follows For's rules.
func Map[In, Out any](t *Task, in []In, grain int, fn func(In) Out) []Out {
	out := make([]Out, len(in))
	For(t, 0, len(in), grain, func(i int) {
		out[i] = fn(in[i])
	})
	return out
}

// Reduce combines fn over [lo, hi) with a parallel tree reduction:
// result = zero ⊕ leaf(lo) ⊕ … ⊕ leaf(hi-1), where ⊕ is combine.
// combine must be associative and zero its identity; the combine
// order always respects index order, so non-commutative combines are
// fine. grain follows For's rules.
func Reduce[T any](t *Task, lo, hi, grain int, zero T, leaf func(i int) T, combine func(a, b T) T) T {
	if hi <= lo {
		return zero
	}
	probed := false
	acc := zero
	if grain < 0 {
		var done int
		acc, done, grain = reduceProbe(t, lo, hi, grainTargetMult*spawnCostNS(t), zero, leaf, combine)
		probed = true
		lo += done
		if lo >= hi {
			return acc
		}
	} else {
		grain = resolveGrain(t, hi-lo, grain)
	}
	var rest T
	lo2, hi2, g := lo, hi, grain
	t.Call(func(ft *Task) { rest = reduceRec(ft, lo2, hi2, g, zero, leaf, combine) })
	if probed {
		return combine(acc, rest)
	}
	return rest
}

// reduceRec is one reduction frame. The left piece is spawned (its
// own child frame), the right piece runs in a called frame, and this
// frame's Sync joins exactly its one spawn — so a stalled subtree
// never blocks an independent subtree's combine. Contrast with
// ReduceShared, the seed's version, whose left recursion shared the
// caller's frame: its innermost Sync joined the right-sibling spawns
// of every enclosing split, serializing the combine spine behind the
// globally slowest leaf.
func reduceRec[T any](t *Task, lo, hi, grain int, zero T, leaf func(i int) T, combine func(a, b T) T) T {
	if hi-lo <= grain {
		acc := zero
		for i := lo; i < hi; i++ {
			acc = combine(acc, leaf(i))
		}
		return acc
	}
	if invariant.Enabled {
		perturb.At(perturb.LoopSplit)
	}
	mid := splitMid(lo, hi)
	var left, right T
	t.Spawn(func(ct *Task) { left = reduceRec(ct, lo, mid, grain, zero, leaf, combine) })
	t.Call(func(ft *Task) { right = reduceRec(ft, mid, hi, grain, zero, leaf, combine) })
	t.Sync()
	return combine(left, right)
}

// reduceProbe is forProbe for reductions: it folds leading iterations
// sequentially in doubling blocks until one block's duration reaches
// targetNS, returning the partial accumulation, the count consumed,
// and the derived grain for the remainder.
func reduceProbe[T any](t *Task, lo, hi int, targetNS int64, zero T, leaf func(i int) T, combine func(a, b T) T) (acc T, done, grain int) {
	n := hi - lo
	acc = zero
	sz := 1
	for done < n {
		if sz > n-done {
			sz = n - done
		}
		start := time.Now()
		for i := lo + done; i < lo+done+sz; i++ {
			acc = combine(acc, leaf(i))
		}
		done += sz
		sz *= 2
		if int64(time.Since(start)) >= targetNS {
			break
		}
	}
	return acc, done, probeGrain(t, n-done, done)
}

// ReduceShared is the seed's shared-task-frame reduction, kept
// verbatim (old split rule, old default grain, recursion on the
// caller's own Task) as the ablation baseline for cmd/parallel-bench
// and the frame-scoping regression tests. Its nested syncs join
// right-sibling spawns of enclosing frames, over-synchronizing the
// combine tree.
//
// Deprecated: use Reduce.
func ReduceShared[T any](t *Task, lo, hi, grain int, zero T, leaf func(i int) T, combine func(a, b T) T) T {
	if hi <= lo {
		return zero
	}
	if grain <= 0 {
		grain = (hi - lo) / (8 * t.Runtime().Workers())
		if grain < 1 {
			grain = 1
		}
	}
	return reduceSharedRec(t, lo, hi, grain, zero, leaf, combine)
}

func reduceSharedRec[T any](t *Task, lo, hi, grain int, zero T, leaf func(i int) T, combine func(a, b T) T) T {
	if hi-lo <= grain {
		acc := zero
		for i := lo; i < hi; i++ {
			acc = combine(acc, leaf(i))
		}
		return acc
	}
	mid := lo + (hi-lo)/2
	var right T
	t.Spawn(func(ct *Task) { right = reduceSharedRec(ct, mid, hi, grain, zero, leaf, combine) })
	left := reduceSharedRec(t, lo, mid, grain, zero, leaf, combine)
	t.Sync()
	return combine(left, right)
}

// ParDo runs left and right as a parallel pair — parlaylib's par_do.
// The pair runs in its own called frame: the right function is
// spawned (the calling worker dives into it, child-first), the left
// runs in a nested called frame, and the join covers exactly the
// pair. Either side may spawn, sync, and call ParDo recursively
// without ever serializing against the caller's outstanding children.
func ParDo(t *Task, left, right func(*Task)) {
	t.Call(func(ft *Task) {
		ft.Spawn(right)
		ft.Call(left)
		ft.Sync()
	})
}

// Scan computes the exclusive prefix combination of in: out[i] =
// zero ⊕ in[0] ⊕ … ⊕ in[i-1], returning out and the total
// combination. combine must be associative and zero its identity.
// Two parallel passes over grain-sized blocks (block reduce, then
// block rewrite under a sequentially scanned spine) — the classic
// work-efficient scan. grain > 0 sets the block size; 0 and AutoGrain
// both pick the static default (the timed probe does not fit the
// two-pass structure).
func Scan[T any](t *Task, in []T, grain int, zero T, combine func(a, b T) T) ([]T, T) {
	n := len(in)
	out := make([]T, n)
	if n == 0 {
		return out, zero
	}
	b := scanBlock(t, n, grain)
	nb := (n + b - 1) / b
	sums := make([]T, nb)
	For(t, 0, nb, 1, func(bi int) {
		lo, hi := bi*b, (bi+1)*b
		if hi > n {
			hi = n
		}
		acc := zero
		for i := lo; i < hi; i++ {
			acc = combine(acc, in[i])
		}
		sums[bi] = acc
	})
	// Sequential spine: exclusive scan of the nb ≈ n/grain block sums.
	acc := zero
	for bi := range sums {
		s := sums[bi]
		sums[bi] = acc
		acc = combine(acc, s)
	}
	For(t, 0, nb, 1, func(bi int) {
		lo, hi := bi*b, (bi+1)*b
		if hi > n {
			hi = n
		}
		p := sums[bi]
		for i := lo; i < hi; i++ {
			out[i] = p
			p = combine(p, in[i])
		}
	})
	return out, acc
}

// Filter returns the elements of in satisfying pred, in order. pred
// is evaluated exactly once per element (flag pass, block-count scan,
// then a parallel packing pass into an exact-size result). grain
// follows Scan's rules.
func Filter[T any](t *Task, in []T, grain int, pred func(T) bool) []T {
	n := len(in)
	if n == 0 {
		return []T{}
	}
	b := scanBlock(t, n, grain)
	nb := (n + b - 1) / b
	keep := make([]bool, n)
	counts := make([]int, nb)
	For(t, 0, nb, 1, func(bi int) {
		lo, hi := bi*b, (bi+1)*b
		if hi > n {
			hi = n
		}
		c := 0
		for i := lo; i < hi; i++ {
			if pred(in[i]) {
				keep[i] = true
				c++
			}
		}
		counts[bi] = c
	})
	total := 0
	for bi, c := range counts {
		counts[bi] = total
		total += c
	}
	out := make([]T, total)
	For(t, 0, nb, 1, func(bi int) {
		lo, hi := bi*b, (bi+1)*b
		if hi > n {
			hi = n
		}
		k := counts[bi]
		for i := lo; i < hi; i++ {
			if keep[i] {
				out[k] = in[i]
				k++
			}
		}
	})
	return out
}

// scanBlock sizes the blocks of the two-pass algorithms: an explicit
// grain as given, otherwise the static default cutoff.
func scanBlock(t *Task, n, grain int) int {
	if grain < 0 {
		grain = 0
	}
	return resolveGrain(t, n, grain)
}
