package icilk

// Parallel-loop helpers built on Spawn/Sync — the convenience layer a
// Cilk programmer gets from cilk_for. Divide-and-conquer splitting
// (rather than one spawn per iteration) keeps the spawn tree
// logarithmic, so steal granularity adapts to however many workers
// show up, and every split point doubles as a promptness check.

// For executes body(i) for every i in [lo, hi) with fork-join
// parallelism. grain is the largest chunk executed sequentially; 0
// picks a default of (hi-lo)/(8*workers), at least 1.
func For(t *Task, lo, hi, grain int, body func(i int)) {
	if hi <= lo {
		return
	}
	if grain <= 0 {
		grain = (hi - lo) / (8 * t.Runtime().Workers())
		if grain < 1 {
			grain = 1
		}
	}
	forRec(t, lo, hi, grain, body)
}

func forRec(t *Task, lo, hi, grain int, body func(i int)) {
	for hi-lo > grain {
		mid := lo + (hi-lo)/2
		mid2 := mid // capture
		hi2 := hi
		t.Spawn(func(ct *Task) { forRec(ct, mid2, hi2, grain, body) })
		hi = mid
	}
	for i := lo; i < hi; i++ {
		body(i)
	}
	t.Sync()
}

// Map applies fn to every element of in, in parallel, returning the
// results in order.
func Map[In, Out any](t *Task, in []In, grain int, fn func(In) Out) []Out {
	out := make([]Out, len(in))
	For(t, 0, len(in), grain, func(i int) {
		out[i] = fn(in[i])
	})
	return out
}

// Reduce combines fn over [lo, hi) with a parallel tree reduction.
// combine must be associative; zero is its identity.
func Reduce[T any](t *Task, lo, hi, grain int, zero T, leaf func(i int) T, combine func(a, b T) T) T {
	if hi <= lo {
		return zero
	}
	if grain <= 0 {
		grain = (hi - lo) / (8 * t.Runtime().Workers())
		if grain < 1 {
			grain = 1
		}
	}
	return reduceRec(t, lo, hi, grain, zero, leaf, combine)
}

func reduceRec[T any](t *Task, lo, hi, grain int, zero T, leaf func(i int) T, combine func(a, b T) T) T {
	if hi-lo <= grain {
		acc := zero
		for i := lo; i < hi; i++ {
			acc = combine(acc, leaf(i))
		}
		return acc
	}
	mid := lo + (hi-lo)/2
	var right T
	t.Spawn(func(ct *Task) { right = reduceRec(ct, mid, hi, grain, zero, leaf, combine) })
	left := reduceRec(t, lo, mid, grain, zero, leaf, combine)
	t.Sync()
	return combine(left, right)
}
