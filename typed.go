package icilk

// Typed future wrappers. The core runtime traffics in `any` (its
// deques are type-erased); these generic helpers restore compile-time
// typing at the API boundary with zero scheduling-path cost.

// FutureOf is a typed view over a Future whose value is a T.
type FutureOf[T any] struct {
	f *Future
}

// FutCreateOf creates a future computing a T at the given priority
// level (a typed t.FutCreate).
func FutCreateOf[T any](t *Task, level int, fn func(*Task) T) FutureOf[T] {
	return FutureOf[T]{f: t.FutCreate(level, func(ct *Task) any { return fn(ct) })}
}

// SubmitOf injects a typed future routine from any goroutine (a typed
// Runtime.Submit).
func SubmitOf[T any](r *Runtime, level int, fn func(*Task) T) FutureOf[T] {
	return FutureOf[T]{f: r.Submit(level, func(ct *Task) any { return fn(ct) })}
}

// Get returns the value, suspending the calling task until complete.
func (ft FutureOf[T]) Get(t *Task) T { return ft.f.Get(t).(T) }

// Wait blocks the calling (non-task) goroutine until complete.
func (ft FutureOf[T]) Wait() T { return ft.f.Wait().(T) }

// TryGet returns the value if already complete.
func (ft FutureOf[T]) TryGet() (T, bool) {
	v, ok := ft.f.TryGet()
	if !ok {
		var zero T
		return zero, false
	}
	return v.(T), true
}

// Done reports completion.
func (ft FutureOf[T]) Done() bool { return ft.f.Done() }

// Untyped returns the underlying Future handle.
func (ft FutureOf[T]) Untyped() *Future { return ft.f }
