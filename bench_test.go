package icilk_test

// bench_test.go holds one testing.B benchmark per table/figure of the
// paper (reporting the figure's quantities via b.ReportMetric), the
// ablation benchmarks for the design choices called out in DESIGN.md,
// and microbenchmarks of the scheduler substrate. The cmd/ binaries
// produce the full figure tables; these benches are the quick,
// single-command regeneration path (go test -bench=. -benchmem).

import (
	"testing"
	"time"

	"icilk"
	"icilk/internal/bench"
	"icilk/internal/deque"
	"icilk/internal/epoch"
	"icilk/internal/fifoq"
	"icilk/internal/prio"
)

// benchDur keeps the macro benchmarks short; the cmd/ harnesses use
// longer windows for the recorded EXPERIMENTS.md numbers.
const benchDur = 400 * time.Millisecond

func reportLatency(b *testing.B, prefix string, p95, p99 time.Duration) {
	b.ReportMetric(float64(p95.Microseconds()), prefix+"-p95-us")
	b.ReportMetric(float64(p99.Microseconds()), prefix+"-p99-us")
}

// BenchmarkFig1MemcachedP99 reproduces Figure 1: Memcached p99 under
// pthread, Adaptive I-Cilk, and Prompt I-Cilk at a moderate load.
func BenchmarkFig1MemcachedP99(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := bench.MemcachedOptions{RPS: 800, Duration: benchDur}
		pt, err := bench.RunMemcachedPthread(opt)
		if err != nil {
			b.Fatal(err)
		}
		ad, err := bench.RunMemcachedICilk(icilk.Adaptive, bench.DefaultSweep()[1], opt)
		if err != nil {
			b.Fatal(err)
		}
		pr, err := bench.RunMemcachedICilk(icilk.Prompt, icilk.AdaptiveParams{}, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pt.Latency.Percentile(99).Microseconds()), "pthread-p99-us")
		b.ReportMetric(float64(ad.Latency.Percentile(99).Microseconds()), "adaptive-p99-us")
		b.ReportMetric(float64(pr.Latency.Percentile(99).Microseconds()), "prompt-p99-us")
	}
}

// BenchmarkFig2DequeCounts reproduces Figure 2: the average number of
// non-empty deques per quantum under Adaptive I-Cilk on Memcached.
func BenchmarkFig2DequeCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run, err := bench.RunMemcachedICilk(icilk.Adaptive, bench.DefaultSweep()[0],
			bench.MemcachedOptions{RPS: 800, Duration: benchDur})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(run.AvgNonEmptyDeques[0], "deques-req-level")
		b.ReportMetric(run.AvgNonEmptyDeques[1], "deques-bg-level")
	}
}

// BenchmarkFig3MemcachedVariants reproduces Figure 3: p95/p99 for all
// five schedulers (the Adaptive variants best-of-sweep).
func BenchmarkFig3MemcachedVariants(b *testing.B) {
	sweep := bench.QuickSweep()
	for i := 0; i < b.N; i++ {
		opt := bench.MemcachedOptions{RPS: 800, Duration: benchDur}
		pt, err := bench.RunMemcachedPthread(opt)
		if err != nil {
			b.Fatal(err)
		}
		reportLatency(b, "pthread", pt.Latency.Percentile(95), pt.Latency.Percentile(99))
		for _, spec := range bench.Schedulers(sweep) {
			best, _, err := bench.BestMemcached(spec, opt)
			if err != nil {
				b.Fatal(err)
			}
			reportLatency(b, spec.Name, best.Latency.Percentile(95), best.Latency.Percentile(99))
		}
	}
}

// BenchmarkFig4JobServer reproduces Figure 4: per-class p99 of the
// job server, Prompt vs plain Adaptive (the full per-class × variant
// matrix comes from cmd/jobserver-bench).
func BenchmarkFig4JobServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := bench.ServerOptions{RPS: 40, Duration: benchDur}
		pr, err := bench.RunJob(icilk.Prompt, icilk.AdaptiveParams{}, opt)
		if err != nil {
			b.Fatal(err)
		}
		ad, err := bench.RunJob(icilk.Adaptive, bench.DefaultSweep()[0], opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, class := range []string{"mm", "sw"} { // highest and lowest priority
			b.ReportMetric(float64(pr.PerOp.Class(class).Percentile(99).Microseconds()), "prompt-"+class+"-p99-us")
			b.ReportMetric(float64(ad.PerOp.Class(class).Percentile(99).Microseconds()), "adaptive-"+class+"-p99-us")
		}
	}
}

// BenchmarkFig5EmailServer reproduces Figure 5: per-op p99 and median
// of the email server, Prompt vs plain Adaptive.
func BenchmarkFig5EmailServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := bench.ServerOptions{RPS: 400, Duration: benchDur}
		pr, err := bench.RunEmail(icilk.Prompt, icilk.AdaptiveParams{}, opt)
		if err != nil {
			b.Fatal(err)
		}
		ad, err := bench.RunEmail(icilk.Adaptive, bench.DefaultSweep()[0], opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, op := range []string{"send", "comp"} {
			b.ReportMetric(float64(pr.PerOp.Class(op).Percentile(99).Microseconds()), "prompt-"+op+"-p99-us")
			b.ReportMetric(float64(ad.PerOp.Class(op).Percentile(99).Microseconds()), "adaptive-"+op+"-p99-us")
		}
	}
}

// BenchmarkFig6Waste reproduces Figure 6: waste and running time of
// Adaptive vs Prompt (job server shown; cmd/waste-bench covers all
// three applications).
func BenchmarkFig6Waste(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := bench.ServerOptions{RPS: 40, Duration: benchDur}
		pr, err := bench.RunJob(icilk.Prompt, icilk.AdaptiveParams{}, opt)
		if err != nil {
			b.Fatal(err)
		}
		ad, err := bench.RunJob(icilk.Adaptive, bench.DefaultSweep()[0], opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pr.Waste.Waste.Microseconds()), "prompt-waste-us")
		b.ReportMetric(float64(pr.Waste.Running().Microseconds()), "prompt-running-us")
		b.ReportMetric(float64(ad.Waste.Waste.Microseconds()), "adaptive-waste-us")
		b.ReportMetric(float64(ad.Waste.Running().Microseconds()), "adaptive-running-us")
	}
}

// ---- Ablations (DESIGN.md "Design choices worth ablating") ----------

// BenchmarkAblationMuggingQueue compares Prompt with and without the
// dedicated mugging queue on the job server: disabling it de-ages
// abandoned deques, hurting tail latency of the lower priorities. The
// effect is ~10% on the low-priority tail — below single-window noise
// on a timeshared host — so each side is the median of three runs
// over the combined low-priority classes (sort+sw p95).
func BenchmarkAblationMuggingQueue(b *testing.B) {
	run := func(disable bool) (time.Duration, error) {
		vals := make([]time.Duration, 3)
		for rep := range vals {
			r, err := bench.RunJobCfg(icilk.Config{
				Workers: 4, Scheduler: icilk.Prompt, DisableMuggingQueue: disable,
			}, bench.ServerOptions{RPS: 45, Duration: 800 * time.Millisecond, Seed: uint64(rep + 1)})
			if err != nil {
				return 0, err
			}
			vals[rep] = (r.PerOp.Class("sw").Percentile(95) + r.PerOp.Class("sort").Percentile(95)) / 2
		}
		if vals[0] > vals[1] {
			vals[0], vals[1] = vals[1], vals[0]
		}
		if vals[1] > vals[2] {
			vals[1], vals[2] = vals[2], vals[1]
		}
		if vals[0] > vals[1] {
			vals[0], vals[1] = vals[1], vals[0]
		}
		return vals[1], nil
	}
	for i := 0; i < b.N; i++ {
		with, err := run(false)
		if err != nil {
			b.Fatal(err)
		}
		without, err := run(true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(with.Microseconds()), "with-mugq-lowprio-p95-us")
		b.ReportMetric(float64(without.Microseconds()), "without-mugq-lowprio-p95-us")
	}
}

// benchPool replicates the Adaptive deque-pool structure (mutex +
// slice + index map with arbitrary removal) for the pool ablation.
type benchPool struct {
	mu     chan struct{} // 1-slot mutex to keep this self-contained
	deques []*deque.Deque
	index  map[*deque.Deque]int
}

func newBenchPool() *benchPool {
	p := &benchPool{mu: make(chan struct{}, 1), index: make(map[*deque.Deque]int)}
	p.mu <- struct{}{}
	return p
}

func (p *benchPool) add(d *deque.Deque) {
	<-p.mu
	p.index[d] = len(p.deques)
	p.deques = append(p.deques, d)
	p.mu <- struct{}{}
}

func (p *benchPool) remove(d *deque.Deque) {
	<-p.mu
	if i, ok := p.index[d]; ok {
		last := len(p.deques) - 1
		p.deques[i] = p.deques[last]
		p.index[p.deques[i]] = i
		p.deques = p.deques[:last]
		delete(p.index, d)
	}
	p.mu <- struct{}{}
}

// BenchmarkAblationCentralVsRandomPool isolates the pool data
// structures: throughput of deque hand-off through Prompt's lock-free
// FIFO vs an Adaptive-style locked random-access pool.
func BenchmarkAblationCentralVsRandomPool(b *testing.B) {
	b.Run("central-fifo", func(b *testing.B) {
		col := epoch.NewCollector()
		q := fifoq.New[*deque.Deque](col)
		p := col.Register()
		d := deque.New(0, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Enqueue(p, d)
			q.Dequeue(p)
		}
	})
	b.Run("locked-pool", func(b *testing.B) {
		// The Adaptive structure: slice + index map under a mutex,
		// insert and arbitrary removal.
		pool := newBenchPool()
		d := deque.New(0, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.add(d)
			pool.remove(d)
		}
	})
}

// ---- Substrate microbenchmarks --------------------------------------

func BenchmarkFifoQueueEnqueueDequeue(b *testing.B) {
	col := epoch.NewCollector()
	q := fifoq.New[*int](col)
	p := col.Register()
	v := 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(p, &v)
		q.Dequeue(p)
	}
}

func BenchmarkDequePushPopBottom(b *testing.B) {
	d := deque.New(0, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBottom(i)
		d.PopBottom()
	}
}

func BenchmarkBitfieldCheck(b *testing.B) {
	bf := prio.New()
	bf.Set(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf.HigherThan(5)
	}
}

func BenchmarkSpawnSync(b *testing.B) {
	rt, err := icilk.New(icilk.Config{Workers: 2, Levels: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	b.ResetTimer()
	rt.Run(func(t *icilk.Task) any {
		for i := 0; i < b.N; i++ {
			t.Spawn(func(*icilk.Task) {})
			t.Sync()
		}
		return nil
	})
}

func BenchmarkFutureCreateGet(b *testing.B) {
	rt, err := icilk.New(icilk.Config{Workers: 2, Levels: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	b.ResetTimer()
	rt.Run(func(t *icilk.Task) any {
		for i := 0; i < b.N; i++ {
			f := t.FutCreate(0, func(*icilk.Task) any { return i })
			f.Get(t)
		}
		return nil
	})
}

func BenchmarkSubmitWait(b *testing.B) {
	rt, err := icilk.New(icilk.Config{Workers: 2, Levels: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Submit(0, func(*icilk.Task) any { return nil }).Wait()
	}
}

// BenchmarkPromptReactionTime quantifies promptness directly: the
// latency of a high-priority request submitted while every worker
// grinds low-priority work. Prompt reacts at the next scheduling
// point (microseconds); the quantum-based AdaptiveGreedy reacts at
// the next reallocation (a quantum, here 2ms) — the mechanism behind
// the paper's Figure 4 high-priority gaps.
func BenchmarkPromptReactionTime(b *testing.B) {
	for _, cfg := range []struct {
		name string
		kind icilk.Scheduler
	}{
		{"prompt", icilk.Prompt},
		{"adaptive-greedy", icilk.AdaptiveGreedy},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			rt, err := icilk.New(icilk.Config{
				Workers: 2, Levels: 2, Scheduler: cfg.kind,
				Adaptive: icilk.AdaptiveParams{Quantum: 2 * time.Millisecond, Delta: 0.5, Rho: 2},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			stop := make(chan struct{})
			var spinners []*icilk.Future
			for i := 0; i < 2; i++ {
				spinners = append(spinners, rt.Submit(1, func(t *icilk.Task) any {
					for {
						select {
						case <-stop:
							return nil
						default:
							t.Yield()
						}
					}
				}))
			}
			time.Sleep(5 * time.Millisecond) // let the spinners settle
			var total time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				rt.Submit(0, func(*icilk.Task) any { return nil }).Wait()
				total += time.Since(t0)
			}
			b.StopTimer()
			close(stop)
			for _, f := range spinners {
				f.Wait()
			}
			b.ReportMetric(float64(total.Microseconds())/float64(b.N), "reaction-us")
		})
	}
}
